"""Tests for the programmatic experiments API and the CLI driver."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.eval import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_latency,
    run_table2,
    run_table3,
)

# Tiny sizes keep the whole module fast; the benchmark suite runs the real
# scales.
SMALL = dict(n=3000, n_modules=8, seed=3)


class TestExperimentFunctions:
    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig5", "latency", "fig6", "fig7", "fig8", "fig9", "table2", "table3",
        }

    def test_fig5_structure(self):
        r = run_fig5("uniform", batch=64, ops=("insert", "1-nn"), **SMALL)
        assert isinstance(r, ExperimentResult)
        assert [row[0] for row in r.rows] == ["insert", "1-nn"]
        assert len(r.headers) == 1 + 2 * 3  # op + (MOp/s, B/elem) per index
        assert "insert" in r.table()

    def test_fig5_single_index(self):
        r = run_fig5("cosmos", batch=64, ops=("1-nn",), indexes=("pim",), **SMALL)
        assert len(r.rows) == 1
        assert r.rows[0][1] > 0

    def test_fig5_unknown_dataset(self):
        with pytest.raises(ValueError):
            run_fig5("planets", **SMALL)

    def test_latency_rows(self):
        r = run_latency("uniform", batch=32, n_batches=4, **SMALL)
        assert [row[0] for row in r.rows] == ["pim-zd-tree", "pkd-tree", "zd-tree"]
        for row in r.rows:
            assert row[1] <= row[2]  # P50 <= P99

    def test_fig6_fractions_sum(self):
        r = run_fig6(batch=64, ops=("bc-1", "bf-100"), **SMALL)
        for row in r.rows:
            assert sum(row[1:]) == pytest.approx(1.0, abs=0.01)

    def test_fig7_rows(self):
        r = run_fig7(batch_sizes=(64, 256), **SMALL)
        assert [row[0] for row in r.rows] == [64, 256]
        assert all(row[1] > 0 for row in r.rows)

    def test_fig8_rows(self):
        r = run_fig8(sizes=(1000, 2000), batch=32, n_modules=8, seed=3)
        assert len(r.rows) == 3
        assert r.headers == ["index", "n=1000", "n=2000"]

    def test_fig9_rows(self):
        r = run_fig9(batch=64, fractions=(0.0, 1.0), **SMALL)
        assert len(r.rows) == 2
        names = {row[0] for row in r.rows}
        assert names == {"throughput-optimized", "skew-resistant"}

    def test_table2_rows(self):
        r = run_table2(batch=64, **SMALL)
        assert len(r.rows) == 2
        for row in r.rows:
            assert row[1] < 20  # space within a constant of raw points

    def test_table3_rows(self):
        r = run_table3(batch=48, ops=("insert", "10-nn"), **SMALL)
        assert len(r.rows) == 4
        for row in r.rows:
            assert all(v > 0 for v in row[1:])


class TestCLI:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            capture_output=True, text=True, timeout=600,
        )

    def test_list(self):
        out = self._run("list")
        assert out.returncode == 0
        for name in ALL_EXPERIMENTS:
            assert name in out.stdout

    def test_single_experiment(self):
        out = self._run("table2", "--n", "2000", "--batch", "64",
                        "--n-modules", "8")
        assert out.returncode == 0
        assert "throughput-optimized" in out.stdout
        assert "Table 2" in out.stdout

    def test_fig5_with_dataset(self):
        out = self._run("latency", "--dataset", "uniform", "--n", "2000",
                        "--batch", "16", "--n-modules", "8")
        assert out.returncode == 0
        assert "P99" in out.stdout

    def test_all_writes_report(self, tmp_path):
        out = self._run(
            "all", "--n", "1500", "--batch", "32", "--n-modules", "4",
            "--out", str(tmp_path),
        )
        assert out.returncode == 0, out.stderr
        report = (tmp_path / "report.md").read_text()
        for name in ALL_EXPERIMENTS:
            assert name in report
        blob = json.loads((tmp_path / "results.json").read_text())
        # Result names carry dataset suffixes (fig5-uniform, latency-osm).
        assert len(blob) == len(ALL_EXPERIMENTS)
        for name in ALL_EXPERIMENTS:
            assert any(key.startswith(name.split("-")[0]) for key in blob)

    def test_requires_command(self):
        out = self._run()
        assert out.returncode != 0

    def test_serve_subcommand(self, tmp_path):
        out = self._run(
            "serve", "--n", "1500", "--n-modules", "8", "--requests", "120",
            "--load", "1.2", "--queue-depth", "64", "--deadline-ms", "50",
            "--out", str(tmp_path / "lat.json"), "--csv",
            str(tmp_path / "lat.csv"),
        )
        assert out.returncode == 0, out.stderr
        assert "calibrated capacity" in out.stdout
        assert "p99" in out.stdout and "goodput" in out.stdout
        doc = json.loads((tmp_path / "lat.json").read_text())
        assert doc["format"] == "repro.obs/serve-1"
        assert doc["stats"]["n_offered"] == 120
        assert (tmp_path / "lat.csv").read_text().startswith("metric,value")

    def test_serve_fixed_policy_and_rate(self):
        out = self._run(
            "serve", "--n", "1500", "--n-modules", "8", "--requests", "60",
            "--rate", "20000", "--policy", "fixed", "--fixed-batch", "4",
            "--mix", "knn=1.0",
        )
        assert out.returncode == 0, out.stderr
        assert "fixed batching" in out.stdout

    def test_serve_rejects_bad_mix(self):
        out = self._run("serve", "--n", "1500", "--requests", "10",
                        "--rate", "1000", "--mix", "knn=x")
        assert out.returncode == 2
        assert "malformed" in out.stdout
