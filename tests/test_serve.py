"""Tests for the open-loop serving layer (``repro.serve``).

Covers: percentile math against a brute-force oracle, admission-queue
overflow/backpressure (nothing is ever dropped silently), batch-policy
behaviour on synthetic amortisation curves, event-loop stamping
invariants, run-to-run determinism (byte-identical ``LatencyStats``), the
obs JSON/CSV exports, and a golden latency snapshot.
"""

from __future__ import annotations

import json
import math
import os
import pathlib

import numpy as np
import pytest

from repro.eval import make_adapter
from repro.eval.metrics import percentile
from repro.obs import latency_csv, latency_json, write_latency
from repro.serve import (
    AdaptiveBatchPolicy,
    AdmissionQueue,
    FixedBatchPolicy,
    LatencyStats,
    Request,
    ServeLoop,
    calibrate_capacity,
    latency_summary,
    make_requests,
    serve,
)
from repro.workloads import poisson_arrivals, uniform_points

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REGEN_GOLDEN"))


# ----------------------------------------------------------------------
# percentile math vs a brute-force oracle
# ----------------------------------------------------------------------
def brute_nearest_rank(values, q):
    """Oracle: sort, take the ceil(q/100 * n)-th value (1-indexed)."""
    vals = sorted(float(v) for v in values)
    if not vals:
        return float("nan")
    rank = max(1, math.ceil(q / 100.0 * len(vals)))
    return vals[rank - 1]


class TestPercentileOracle:
    def test_matches_bruteforce_on_random_lists(self):
        rng = np.random.default_rng(42)
        for n in (1, 2, 3, 7, 50, 999, 1000, 1001):
            vals = rng.random(n).tolist()
            for q in (50.0, 90.0, 99.0, 99.9):
                assert percentile(vals, q) == brute_nearest_rank(vals, q)

    def test_known_values(self):
        vals = list(range(1, 101))  # 1..100
        assert percentile(vals, 50) == 50
        assert percentile(vals, 99) == 99
        assert percentile(vals, 100) == 100
        assert percentile([7.0], 99.9) == 7.0

    def test_latency_summary_fields(self):
        rng = np.random.default_rng(1)
        vals = rng.random(500).tolist()
        s = latency_summary(vals)
        for name, q in (("p50", 50), ("p90", 90), ("p99", 99), ("p999", 99.9)):
            assert s[name] == brute_nearest_rank(vals, q)
        assert s["max"] == max(vals)
        assert s["mean"] == pytest.approx(sum(vals) / len(vals))
        assert s["p50"] <= s["p90"] <= s["p99"] <= s["p999"] <= s["max"]

    def test_empty_is_nan(self):
        s = latency_summary([])
        assert all(math.isnan(v) for v in s.values())


# ----------------------------------------------------------------------
# admission queue: bounded depth, explicit backpressure
# ----------------------------------------------------------------------
def _req(rid, kind="knn", t=0.0, k=10):
    return Request(rid=rid, kind=kind, payload=None, arrival_s=t, k=k)


class TestAdmissionQueue:
    def test_reject_when_full(self):
        q = AdmissionQueue(3, overflow="reject")
        assert all(q.offer(_req(i), float(i)) for i in range(3))
        r = _req(3)
        assert not q.offer(r, 3.0)
        assert r.status == "rejected" and r.enqueue_s == 3.0
        assert len(q) == 3 and q.rejected == [r] and not q.shed

    def test_shed_oldest_when_full(self):
        q = AdmissionQueue(2, overflow="shed-oldest")
        r0, r1, r2 = _req(0), _req(1), _req(2)
        q.offer(r0, 0.0)
        q.offer(r1, 1.0)
        assert q.offer(r2, 2.0)  # admitted; r0 evicted
        assert r0.status == "shed" and q.shed == [r0]
        assert [r.rid for r in q.take(("knn", 10), 10)] == [1, 2]

    def test_nothing_silent(self):
        """Every offered request ends queued, rejected, or shed."""
        q = AdmissionQueue(4, overflow="shed-oldest")
        reqs = [_req(i) for i in range(10)]
        for i, r in enumerate(reqs):
            q.offer(r, float(i))
        assert len(q) + len(q.rejected) + len(q.shed) == len(reqs)
        assert all(r.status in ("queued", "rejected", "shed") for r in reqs)

    def test_take_is_fifo_and_group_scoped(self):
        q = AdmissionQueue(10)
        a = [_req(i, kind="knn") for i in range(3)]
        b = [_req(10 + i, kind="bc", k=0) for i in range(2)]
        for i, r in enumerate([a[0], b[0], a[1], b[1], a[2]]):
            q.offer(r, float(i))
        assert q.head_group() == ("knn", 10)
        assert q.backlog(("knn", 10)) == 3 and q.backlog(("bc", 0)) == 2
        taken = q.take(("knn", 10), 2)
        assert [r.rid for r in taken] == [0, 1]
        assert q.head_group() == ("bc", 0)  # b[0] is now oldest
        assert len(q) == 3

    def test_expire_counts_from_enqueue_not_arrival(self):
        """Regression: a request re-offered late (restart/retry paths)
        must not be charged queue-wait it never spent here.  The old
        implementation timed out against ``arrival_s``, expiring this
        request (now=12, arrival=0, timeout=5) despite only 2s in queue."""
        q = AdmissionQueue(4)
        r = _req(0, t=0.0)
        q.offer(r, now=10.0)  # re-enters the queue long after arrival
        assert q.expire(12.0, 5.0) == []
        assert r.status == "queued" and len(q) == 1
        # Once 5s of *queue residence* elapse it does expire, stamped at
        # the instant the timeout elapsed, not at the expire() call.
        assert q.expire(15.5, 5.0) == [r]
        assert r.status == "timed_out"
        assert r.complete_s == r.enqueue_s + 5.0 == 15.0

    def test_expired_leave_in_admission_order(self):
        q = AdmissionQueue(8)
        reqs = [_req(i, kind=("knn" if i % 2 else "bc"),
                     k=(10 if i % 2 else 0)) for i in range(6)]
        for r in reqs:
            q.offer(r, now=0.0)
        out = q.expire(10.0, 1.0)
        assert [r.rid for r in out] == [0, 1, 2, 3, 4, 5]
        assert q.is_empty and q.timed_out == out

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)
        with pytest.raises(ValueError):
            AdmissionQueue(4, overflow="drop")
        with pytest.raises(ValueError):
            AdmissionQueue(4).take(("knn", 10), 0)


# ----------------------------------------------------------------------
# batch policies
# ----------------------------------------------------------------------
class TestBatchPolicies:
    def test_fixed_caps_at_batch(self):
        p = FixedBatchPolicy(8)
        g = ("knn", 10)
        assert p.batch_size(g, 3) == 3
        assert p.batch_size(g, 100) == 8
        with pytest.raises(ValueError):
            FixedBatchPolicy(0)

    def test_adaptive_bootstrap_doubles(self):
        p = AdaptiveBatchPolicy()
        g = ("knn", 10)
        sizes = []
        for _ in range(4):
            b = p.batch_size(g, backlog=1000)
            sizes.append(b)
            p.observe(g, b, 1e-3)  # constant time: fit degenerate until 2 sizes
        assert sizes[:2] == [1, 2]  # doubling probe schedule

    def test_adaptive_recovers_amortisation_knee(self):
        """Feed a clean t = a + b*B curve; B* must hit the overhead target."""
        a, b = 1e-4, 1e-5
        p = AdaptiveBatchPolicy(overhead_target=0.1)
        g = ("knn", 10)
        for size in (4, 8, 16, 64):
            p.observe(g, size, a + b * size)
        b_star = p.batch_size(g, backlog=10_000)
        assert b_star == math.ceil(a * 0.9 / (b * 0.1))
        # Overhead share at B* is at most the target.
        assert a / (a + b * b_star) <= 0.1 + 1e-9
        # Backlog still caps the dispatch.
        assert p.batch_size(g, backlog=5) == 5

    def test_adaptive_degenerate_fits(self):
        g = ("knn", 10)
        p = AdaptiveBatchPolicy()          # b <= 0: amortise, but clamped
        p.observe(g, 10, 5e-3)
        p.observe(g, 100, 5e-3)
        # A degenerate (flat) fit must not cliff-jump to max_batch: the
        # choice is capped at 2x the largest batch observed in the window.
        assert p.batch_size(g, 10 ** 6) == 200
        p2 = AdaptiveBatchPolicy()         # a <= 0: no overhead, serve fine
        p2.observe(g, 10, 1e-4)
        p2.observe(g, 100, 1e-3)
        assert p2.batch_size(g, 10 ** 6) == p2.min_batch

    def test_adaptive_noisy_fit_clamped(self):
        """A noisy window whose extrapolated B* overshoots the observed
        range is clamped to 2x the largest observed batch (regression:
        the old policy jumped straight to max_batch=4096)."""
        g = ("knn", 10)
        p = AdaptiveBatchPolicy(overhead_target=0.01)
        # Huge apparent fixed overhead vs tiny marginal cost: the raw
        # B* = ceil(a*(1-f)/(b*f)) lands far beyond anything observed.
        p.observe(g, 4, 1.0)
        p.observe(g, 8, 1.0 + 4e-6)
        raw = p.batch_size(g, 10 ** 6)
        assert raw == 16  # 2 * max observed (8), not max_batch
        # The clamp rides up as bigger batches are actually observed.
        p.observe(g, 16, 1.0 + 1.2e-5)
        assert p.batch_size(g, 10 ** 6) == 32

    def test_adaptive_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(overhead_target=0.0)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(min_batch=10, max_batch=5)


# ----------------------------------------------------------------------
# serving loop end-to-end on the simulator
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serve_data():
    return uniform_points(1500, 3, seed=11)


def _scenario(data, *, n_req=160, rate=40_000.0, depth=64,
              overflow="reject", policy=None, mix=None, deadline_s=0.05):
    """One fully deterministic serve run on a fresh adapter."""
    adapter = make_adapter("pim", data, n_modules=8, seed=3)
    arrivals = poisson_arrivals(rate, n_req, seed=21)
    requests = make_requests(
        data, arrivals,
        mix=mix or {"knn": 0.6, "bc": 0.15, "bf": 0.15, "insert": 0.1},
        k=5, deadline_s=deadline_s, seed=22,
    )
    policy = policy if policy is not None else AdaptiveBatchPolicy()
    loop = ServeLoop(adapter, AdmissionQueue(depth, overflow=overflow), policy)
    return loop.run(requests)


class TestServeLoop:
    def test_lifecycle_stamps(self, serve_data):
        res = _scenario(serve_data)
        done = [r for r in res.requests if r.status == "done"]
        assert done, "scenario must complete requests"
        for r in done:
            assert r.enqueue_s == r.arrival_s
            assert r.dispatch_s >= r.arrival_s
            assert r.complete_s > r.dispatch_s
            assert r.latency_s == pytest.approx(r.queue_s + r.service_s)
            assert r.batch_id >= 0
        # Batch members share dispatch/completion (BSP batches finish together).
        for b in res.batches:
            members = [r for r in done if r.batch_id == b.bid]
            assert len(members) == b.size
            assert all(r.dispatch_s == b.dispatch_s for r in members)
            assert all(r.kind == b.kind for r in members)

    def test_accounting_never_silent(self, serve_data):
        res = _scenario(serve_data, n_req=200, rate=500_000.0, depth=16)
        s = res.stats
        assert s.n_rejected > 0, "overload scenario must exercise backpressure"
        assert s.n_offered == s.n_done + s.n_rejected + s.n_shed
        assert all(r.status in ("done", "rejected", "shed")
                   for r in res.requests)

    def test_shed_oldest_policy(self, serve_data):
        res = _scenario(serve_data, n_req=200, rate=500_000.0, depth=16,
                        overflow="shed-oldest")
        s = res.stats
        assert s.n_shed > 0 and s.n_rejected == 0
        assert s.n_offered == s.n_done + s.n_shed

    def test_virtual_clock_monotone(self, serve_data):
        res = _scenario(serve_data)
        ends = [b.dispatch_s + b.service_s for b in res.batches]
        for b, prev_end in zip(res.batches[1:], ends):
            assert b.dispatch_s >= prev_end - 1e-12
        assert all(b.service_s > 0 for b in res.batches)

    def test_mixed_kinds_complete(self, serve_data):
        res = _scenario(serve_data)
        assert set(res.stats.by_kind) == {"knn", "bc", "bf", "insert"}
        assert sum(res.stats.by_kind.values()) == res.stats.n_done

    def test_goodput_respects_deadline(self, serve_data):
        tight = _scenario(serve_data, deadline_s=1e-9).stats
        loose = _scenario(serve_data, deadline_s=10.0).stats
        assert tight.n_late == tight.n_done      # nothing meets 1ns
        assert tight.goodput == 0.0
        assert loose.n_late == 0
        assert loose.goodput == loose.throughput

    def test_serve_convenience_wrapper(self, serve_data):
        adapter = make_adapter("pim", serve_data, n_modules=8, seed=3)
        arrivals = poisson_arrivals(20_000.0, 40, seed=5)
        reqs = make_requests(serve_data, arrivals, mix={"knn": 1.0}, k=5,
                             seed=6)
        res = serve(adapter, reqs, queue_depth=64)
        assert res.stats.n_done == 40

    def test_calibrate_capacity(self, serve_data):
        adapter = make_adapter("pim", serve_data, n_modules=8, seed=3)
        cap = calibrate_capacity(adapter, serve_data, k=5, batch=64, seed=1)
        assert cap > 0
        with pytest.raises(ValueError):
            calibrate_capacity(adapter, serve_data, kind="bc")


# ----------------------------------------------------------------------
# determinism: identical runs → byte-identical LatencyStats
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_two_runs_byte_identical(self, serve_data):
        a = _scenario(serve_data).stats.to_json()
        b = _scenario(serve_data).stats.to_json()
        assert a == b
        assert json.loads(a) == json.loads(b)

    def test_policy_changes_stats(self, serve_data):
        ada = _scenario(serve_data, rate=200_000.0).stats.to_json()
        fix = _scenario(serve_data, rate=200_000.0,
                        policy=FixedBatchPolicy(1)).stats.to_json()
        assert ada != fix


# ----------------------------------------------------------------------
# obs exports
# ----------------------------------------------------------------------
class TestExports:
    def test_json_and_csv(self, serve_data, tmp_path):
        res = _scenario(serve_data)
        doc = write_latency(res.stats, json_path=tmp_path / "lat.json",
                            csv_path=tmp_path / "lat.csv",
                            batches=res.batches)
        assert doc["format"] == "repro.obs/serve-1"
        loaded = json.loads((tmp_path / "lat.json").read_text())
        assert loaded["stats"]["n_done"] == res.stats.n_done
        assert len(loaded["batches"]) == len(res.batches)
        csv = (tmp_path / "lat.csv").read_text()
        assert csv.splitlines()[0] == "metric,value"
        assert any(line.startswith("latency_s.p99,") for line in csv.splitlines())

    def test_latency_json_without_batches(self, serve_data):
        doc = latency_json(_scenario(serve_data).stats)
        assert "batches" not in doc
        assert latency_csv(_scenario(serve_data).stats).count("\n") > 10


# ----------------------------------------------------------------------
# golden latency snapshot
# ----------------------------------------------------------------------
def _round_floats(obj, sig=9):
    """Round floats to ``sig`` significant digits (absorbs libm jitter
    across platforms while catching any real accounting change)."""
    if isinstance(obj, float):
        return float(f"{obj:.{sig}g}")
    if isinstance(obj, dict):
        return {k: _round_floats(v, sig) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_round_floats(v, sig) for v in obj]
    return obj


def test_golden_latency_snapshot(serve_data):
    path = GOLDEN_DIR / "serve_latency.json"
    got = _round_floats(_scenario(serve_data).stats.to_dict())
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden file {path}; regenerate with "
        "REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_serve.py"
    )
    want = json.loads(path.read_text())
    assert got == want, (
        f"serve latency snapshot diverges from {path.name}:\n"
        f"  want={want}\n  got ={got}"
    )
