"""Unit tests for the PIM Model simulator substrate."""

import numpy as np
import pytest

from repro.pim import (
    LRUCache,
    PIMCostModel,
    PIMSystem,
    UPMEM_2048,
    upmem_scaled,
)


class TestLRUCache:
    def test_miss_then_hit(self):
        c = LRUCache(4)
        assert not c.touch("a")
        assert c.touch("a")
        assert c.misses == 1 and c.hits == 1

    def test_eviction_order_is_lru(self):
        c = LRUCache(2)
        c.touch("a")
        c.touch("b")
        c.touch("a")  # refresh a; b is now LRU
        c.touch("c")  # evicts b
        assert c.touch("a")
        assert not c.touch("b")

    def test_dram_words_counts_misses_and_streams(self):
        c = LRUCache(8, words_per_block=8)
        c.touch("x")
        c.stream(100)
        assert c.dram_words == 8 + 100

    def test_touch_range(self):
        c = LRUCache(100)
        misses = c.touch_range("base", 5)
        assert misses == 5
        assert c.touch_range("base", 5) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_reset_counters_keeps_contents(self):
        c = LRUCache(4)
        c.touch("a")
        c.reset_counters()
        assert c.misses == 0
        assert c.touch("a")  # still resident


class TestBSPRounds:
    def test_pim_time_is_max_over_modules(self):
        sys = PIMSystem(4)
        with sys.round():
            sys.charge_pim(0, 10)
            sys.charge_pim(1, 50)
            sys.charge_pim(2, 20)
        assert sys.stats.total.pim_cycles == 50

    def test_rounds_accumulate(self):
        sys = PIMSystem(2)
        for _ in range(3):
            with sys.round():
                sys.charge_pim(0, 1)
        assert sys.stats.total.rounds == 3
        assert sys.stats.mux_switches == 6
        assert sys.stats.total.pim_cycles == 3

    def test_comm_totals_and_max(self):
        sys = PIMSystem(4)
        with sys.round():
            sys.send(0, 10)
            sys.send(1, 4)
            sys.recv(1, 2)
        assert sys.stats.total.comm_words == 16
        assert sys.stats.total.comm_max_words == 10
        assert sys.stats.total.module_rounds == 2

    def test_empty_round_charges_nothing(self):
        """Regression: a round that touched no module must be a no-op —
        no round, no mux switches, no PIM time (seed code charged
        rounds += 1 and mux_switches += 2 for no-op rounds)."""
        sys = PIMSystem(4)
        with sys.round():
            pass
        assert sys.stats.total.rounds == 0
        assert sys.stats.mux_switches == 0
        assert sys.stats.total.pim_cycles == 0
        assert sys.stats.total.comm_words == 0
        assert sys.stats.total.module_rounds == 0
        # A real round afterwards still charges normally.
        with sys.round():
            sys.charge_pim(0, 5)
        assert sys.stats.total.rounds == 1
        assert sys.stats.mux_switches == 2

    def test_pim_activity_outside_round_raises(self):
        sys = PIMSystem(2)
        with pytest.raises(RuntimeError):
            sys.charge_pim(0, 1)
        with pytest.raises(RuntimeError):
            sys.send(0, 1)

    def test_rounds_do_not_nest(self):
        sys = PIMSystem(2)
        with pytest.raises(RuntimeError):
            with sys.round():
                with sys.round():
                    pass

    def test_broadcast_charges_every_module(self):
        sys = PIMSystem(8)
        with sys.round():
            sys.broadcast(5)
        assert sys.stats.total.comm_words == 40
        assert sys.stats.total.comm_max_words == 5

    def test_comm_flat_spreads_max(self):
        sys = PIMSystem(10)
        sys.charge_comm_flat(100)
        assert sys.stats.total.comm_words == 100
        assert sys.stats.total.comm_max_words == pytest.approx(10)


class TestPhases:
    def test_phase_attribution(self):
        sys = PIMSystem(2)
        with sys.phase("alpha"):
            sys.charge_cpu(10)
            with sys.phase("beta"):
                sys.charge_cpu(5)
        assert sys.stats.phases["alpha"].cpu_ops == 10
        assert sys.stats.phases["beta"].cpu_ops == 5
        assert sys.stats.total.cpu_ops == 15

    def test_charge_pim_books_to_phase_at_charge_time(self):
        """Regression: a phase entered *inside* a round owns the PIM cycles
        and words charged under it.  Seed code attributed everything at
        round close to whatever phase was active then (often the round's
        outer phase, or "other")."""
        sys = PIMSystem(2)
        with sys.phase("outer"):
            with sys.round():
                with sys.phase("inner"):
                    sys.charge_pim(0, 100)
                    sys.send(0, 7)
        inner = sys.stats.phases["inner"]
        assert inner.pim_cycles == 100
        assert inner.comm_words == 7
        assert inner.comm_max_words == 7
        # Round-level scalars go to the phase active at round entry.
        outer = sys.stats.phases["outer"]
        assert outer.rounds == 1
        assert outer.module_rounds == 1
        assert outer.pim_cycles == 0
        assert outer.comm_words == 0

    def test_straggler_cycles_split_across_phases(self):
        """The straggler's max-cycle charge is split by the phases under
        which the straggler itself accumulated work."""
        sys = PIMSystem(2)
        with sys.round():
            with sys.phase("a"):
                sys.charge_pim(0, 30)
            with sys.phase("b"):
                sys.charge_pim(0, 70)
                sys.charge_pim(1, 10)  # not the straggler
        assert sys.stats.total.pim_cycles == 100
        assert sys.stats.phases["a"].pim_cycles == 30
        assert sys.stats.phases["b"].pim_cycles == 70

    def test_snapshot_diff_isolates_window(self):
        sys = PIMSystem(2)
        sys.charge_cpu(100)
        snap = sys.snapshot()
        sys.charge_cpu(7)
        with sys.round():
            sys.send(0, 3)
        d = sys.stats.diff(snap)
        assert d.total.cpu_ops == 7
        assert d.total.comm_words == 3
        assert d.total.rounds == 1


class TestCPUSide:
    def test_llc_miss_charges_dram(self):
        sys = PIMSystem(2, llc_bytes=64 * 100)
        sys.touch_cpu_block("n1")
        sys.touch_cpu_block("n1")
        assert sys.stats.total.dram_words == 8  # one miss

    def test_dram_stream(self):
        sys = PIMSystem(2)
        sys.dram_stream(1000)
        assert sys.stats.total.dram_words == 1000


class TestPlacement:
    def test_deterministic(self):
        a = PIMSystem(16, seed=7)
        b = PIMSystem(16, seed=7)
        keys = [("meta", i) for i in range(100)]
        assert [a.place(k) for k in keys] == [b.place(k) for k in keys]

    def test_seed_changes_layout(self):
        a = PIMSystem(16, seed=1)
        b = PIMSystem(16, seed=2)
        keys = [("meta", i) for i in range(200)]
        assert [a.place(k) for k in keys] != [b.place(k) for k in keys]

    def test_roughly_uniform(self):
        sys = PIMSystem(8, seed=3)
        counts = np.bincount(
            [sys.place(("x", i)) for i in range(4000)], minlength=8
        )
        assert counts.min() > 350  # expectation 500 per module

    def test_module_count_validation(self):
        with pytest.raises(ValueError):
            PIMSystem(0)


class TestResidency:
    def test_alloc_free_master_cache(self):
        sys = PIMSystem(2)
        m = sys.modules[0]
        m.alloc_master(100)
        m.alloc_cache(30)
        assert sys.master_words() == 100
        assert sys.cache_words() == 30
        assert sys.used_words() == 130
        m.free_master(100)
        m.free_cache(30)
        assert sys.used_words() == 0

    def test_negative_residency_raises(self):
        sys = PIMSystem(1)
        with pytest.raises(RuntimeError):
            sys.modules[0].free_master(1)

    def test_capacity_flag(self):
        sys = PIMSystem(1, module_capacity_words=10)
        sys.modules[0].alloc_master(11)
        assert sys.modules[0].over_capacity()


class TestCostModel:
    def test_components_sum(self):
        from repro.pim.stats import PhaseCounters

        cm = UPMEM_2048
        c = PhaseCounters(cpu_ops=2.1e9 * 32, pim_cycles=350e6, comm_words=1e9 / 8,
                          comm_max_words=0, rounds=1)
        t = cm.time(c)
        assert t.cpu_s == pytest.approx(1.0)
        assert t.pim_s == pytest.approx(1.0)
        assert t.total_s == t.cpu_s + t.pim_s + t.comm_s

    def test_cpu_roofline_max(self):
        from repro.pim.stats import PhaseCounters

        cm = UPMEM_2048
        heavy_mem = PhaseCounters(cpu_ops=1, dram_words=cm.dram_bw_bytes_s / 8)
        t = cm.time(heavy_mem)
        assert t.cpu_s == pytest.approx(1.0)

    def test_direct_api_is_faster(self):
        from repro.pim.stats import PhaseCounters

        c = PhaseCounters(comm_words=1e6, rounds=100, module_rounds=1000)
        fast = UPMEM_2048.with_direct_api(True).time(c).comm_s
        slow = UPMEM_2048.with_direct_api(False).time(c).comm_s
        assert slow > fast

    def test_scaled_preserves_per_op_comm_time(self):
        from repro.pim.stats import PhaseCounters

        # Same per-module communication at 2048 and 64 modules should take
        # the same time once bandwidth and overheads scale jointly.
        big = UPMEM_2048
        small = upmem_scaled(64)
        c_big = PhaseCounters(comm_words=2048 * 100)
        c_small = PhaseCounters(comm_words=64 * 100)
        assert small.time(c_small).comm_s == pytest.approx(big.time(c_big).comm_s)
        # Per-round fixed overheads scale down with the machine.
        assert small.round_overhead_s == pytest.approx(big.round_overhead_s / 32)

    def test_traffic_bytes(self):
        from repro.pim.stats import PhaseCounters

        c = PhaseCounters(comm_words=10, dram_words=5)
        assert UPMEM_2048.traffic_bytes(c) == 15 * 8

    def test_straggler_dominates_round(self):
        """Skewed per-module work must cost more than balanced work."""
        balanced = PIMSystem(4)
        skewed = PIMSystem(4)
        with balanced.round():
            for m in range(4):
                balanced.charge_pim(m, 25)
        with skewed.round():
            skewed.charge_pim(0, 100)
        assert skewed.stats.total.pim_cycles > balanced.stats.total.pim_cycles


class TestPhaseSumInvariant:
    """Property: after any workload, ``stats.total`` equals the sum over
    ``stats.phases`` for every counter (charge-time attribution never loses
    or double-books work)."""

    COUNTERS = (
        "cpu_ops",
        "cpu_span",
        "pim_cycles",
        "comm_words",
        "comm_max_words",
        "rounds",
        "module_rounds",
        "dram_words",
    )

    @staticmethod
    def _check(sys):
        from repro.pim.stats import PhaseCounters

        summed = PhaseCounters()
        for c in sys.stats.phases.values():
            summed.add(c)
        for f in TestPhaseSumInvariant.COUNTERS:
            assert getattr(sys.stats.total, f) == getattr(summed, f), f

    def test_mixed_workload_hypothesis(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        # Integer-valued charges keep float sums exact, so the invariant
        # can be asserted with ``==`` rather than approx.
        action = st.one_of(
            st.tuples(st.just("cpu"), st.integers(1, 50)),
            st.tuples(st.just("dram"), st.integers(1, 50)),
            st.tuples(st.just("flat"), st.integers(1, 50)),
            st.tuples(
                st.just("round"),
                st.lists(
                    st.tuples(
                        st.sampled_from(["pim", "send", "recv"]),
                        st.integers(0, 3),  # module id
                        st.integers(1, 40),  # amount
                        st.sampled_from(["p0", "p1", "p2"]),  # inner phase
                    ),
                    max_size=6,
                ),
            ),
        )

        @settings(max_examples=60, deadline=None)
        @given(
            script=st.lists(
                st.tuples(st.sampled_from(["p0", "p1", "p2"]), action),
                max_size=12,
            )
        )
        def run(script):
            sys = PIMSystem(4)
            for outer_phase, (kind, arg) in script:
                with sys.phase(outer_phase):
                    if kind == "cpu":
                        sys.charge_cpu(arg)
                    elif kind == "dram":
                        sys.dram_stream(arg)
                    elif kind == "flat":
                        sys.charge_comm_flat(arg)
                    else:  # round
                        with sys.round():
                            for verb, mid, amount, inner in arg:
                                with sys.phase(inner):
                                    if verb == "pim":
                                        sys.charge_pim(mid, amount)
                                    elif verb == "send":
                                        sys.send(mid, amount)
                                    else:
                                        sys.recv(mid, amount)
            self._check(sys)

        run()

    def test_llc_misses_respect_invariant(self):
        sys = PIMSystem(2, llc_bytes=64 * 4)
        with sys.phase("scan"):
            for i in range(16):
                sys.touch_cpu_block(("blk", i))
        with sys.phase("rescan"):
            for i in range(16):
                sys.touch_cpu_block(("blk", i))
        self._check(sys)
