"""Tests for the sharded sweep runner (``repro.serve.sweep``) and its CLI.

The sweep's contract is *replica semantics with a deterministic merge*:
shard ``i`` of ``S`` is an independent serving replica seeded
``seed + 1000·i``, latencies are pooled before the percentile summary,
counts and rates are summed, and the merge is keyed by shard index — so
the merged result must be byte-stable across repeated runs and across
inline vs. worker-pool execution, no matter how the OS schedules the
workers.
"""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.serve import SweepResult, SweepShardError, run_shard, run_sweep
from repro.serve.sweep import _shard_specs

SMALL = dict(dataset="uniform", n=2000, n_modules=8, total_requests=240,
             rate=30_000, seed=5)


def _strip_wall(d: dict) -> dict:
    d = dict(d)
    d.pop("wall_s")
    d.pop("shard_wall_s")
    return d


class TestSharding:
    def test_split_and_seeds(self):
        specs = _shard_specs(procs=3, total_requests=5, seed=7, spec_kw={})
        assert [s["requests"] for s in specs] == [2, 2, 1]
        assert [s["seed"] for s in specs] == [7, 1007, 2007]

    def test_more_procs_than_requests(self):
        specs = _shard_specs(procs=8, total_requests=2, seed=0, spec_kw={})
        assert [s["requests"] for s in specs] == [1, 1]

    def test_counts_sum_to_offered(self):
        r = run_sweep(procs=2, **SMALL)
        assert isinstance(r, SweepResult)
        assert r.n_shards == 2
        assert r.n_offered == SMALL["total_requests"]
        assert (r.n_done + r.n_failed + r.n_timed_out
                + r.n_rejected + r.n_shed) == r.n_offered

    def test_rate_is_required_keyword(self):
        with pytest.raises(TypeError):
            run_sweep(dataset="uniform", n=2000, total_requests=10)  # no rate


class TestDeterminism:
    def test_pooled_runs_are_identical(self):
        a = run_sweep(procs=2, **SMALL)
        b = run_sweep(procs=2, **SMALL)
        assert _strip_wall(a.to_dict()) == _strip_wall(b.to_dict())

    def test_pool_matches_inline_shards(self):
        """The worker pool must add nothing: merging the same shard specs
        run inline in this process gives the same pooled latencies."""
        r = run_sweep(procs=2, **SMALL)
        spec_kw = dict(dataset=SMALL["dataset"], n=SMALL["n"],
                       data_seed=SMALL["seed"], n_modules=SMALL["n_modules"],
                       index="pim", rate=float(SMALL["rate"]), mix=None,
                       k=10, deadline_s=float("inf"), queue_depth=4096,
                       overflow="reject", policy="adaptive", fixed_batch=256,
                       sim_mode=None, exec_mode=None, arrival="poisson")
        specs = _shard_specs(procs=2, total_requests=SMALL["total_requests"],
                             seed=SMALL["seed"], spec_kw=spec_kw)
        shards = [run_shard(s) for s in specs]
        assert [s["seed"] for s in shards] == r.shard_seeds
        pooled = np.concatenate([np.asarray(s["latency_s"]) for s in shards])
        assert r.n_done == sum(s["n_done"] for s in shards)
        assert r.latency["p99"] == float(np.sort(pooled)[
            int(np.ceil(0.99 * len(pooled))) - 1])

    def test_sim_modes_agree_through_the_sweep(self):
        a = run_sweep(procs=1, sim_mode="scalar", **SMALL)
        b = run_sweep(procs=1, sim_mode="vector", **SMALL)
        assert _strip_wall(a.to_dict()) == _strip_wall(b.to_dict())


class TestShardFailure:
    """A failed shard must surface as SweepShardError naming the shard.

    Before the fix, a worker exception escaped ``pool.map`` as a bare
    remote traceback with no way to tell *which* replica (and seed) died
    — useless for re-running the one bad shard.
    """

    def _flaky(self, monkeypatch, bad_shard: int):
        import repro.serve.sweep as sweep_mod

        real = sweep_mod.run_shard

        def run_shard_patched(spec):
            if spec["shard"] == bad_shard:
                raise ValueError("injected shard failure")
            return real(spec)

        monkeypatch.setattr(sweep_mod, "run_shard", run_shard_patched)

    @pytest.mark.parametrize("procs", [1, 2])
    def test_failure_names_shard_and_seed(self, monkeypatch, procs):
        bad = procs - 1  # the last shard, so at least one succeeds first
        self._flaky(monkeypatch, bad)
        with pytest.raises(SweepShardError) as exc:
            run_sweep(procs=procs, **SMALL)
        e = exc.value
        assert e.shard_index == bad
        assert e.seed == SMALL["seed"] + 1000 * bad
        assert "injected shard failure" in str(e)
        assert f"shard {bad}" in str(e) and str(e.seed) in str(e)
        # The worker-side traceback rides along for debugging.
        assert "ValueError" in e.worker_traceback

    def test_real_failure_path_no_monkeypatch(self):
        """An actually-bad spec (unknown arrival kind) gets the same
        treatment — the error is not an artifact of the injection."""
        with pytest.raises(SweepShardError) as exc:
            run_sweep(procs=1, arrival="bogus", **SMALL)
        assert exc.value.shard_index == 0
        assert exc.value.seed == SMALL["seed"]
        assert "KeyError" in str(exc.value)


class TestCLI:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            capture_output=True, text=True, timeout=600,
        )

    def test_sweep_subcommand(self, tmp_path):
        out = self._run(
            "sweep", "--n", "2000", "--n-modules", "8", "--requests", "200",
            "--rate", "30000", "--procs", "2",
            "--out", str(tmp_path / "sweep.json"),
            "--csv", str(tmp_path / "sweep.csv"),
        )
        assert out.returncode == 0, out.stderr
        assert "shards            2" in out.stdout
        doc = json.loads((tmp_path / "sweep.json").read_text())
        assert doc["n_offered"] == 200
        assert doc["shard_seeds"] == [7, 1007]
        csv = (tmp_path / "sweep.csv").read_text()
        assert csv.startswith("metric,value")
        assert "latency_p99," in csv

    def test_sweep_accepts_rebalance(self):
        """Sweep ingests knobs through the same ConfigSpace path as serve:
        each shard builds its own rebalancer (the old hard rejection is
        gone), and non-default knobs are reported."""
        out = self._run("sweep", "--n", "2000", "--requests", "10",
                        "--rate", "1000", "--rebalance")
        assert out.returncode == 0, out.stdout + out.stderr
        assert "tuned knobs: rebalance.enabled=True [flag]" in out.stdout

    def test_sweep_rejects_ungated_refinement(self):
        """--rebalance-ratio without --rebalance is a loud conflict, not
        the historical silent drop (and the same message serve prints)."""
        out = self._run("sweep", "--n", "2000", "--requests", "10",
                        "--rate", "1000", "--rebalance-ratio", "2.0")
        assert out.returncode == 2
        assert "requires rebalance.enabled=True" in out.stdout
