"""Shared fixtures and brute-force oracles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import L1, L2, LINF, Box


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def pts3d(rng):
    """A modest 3-D point cloud."""
    return rng.random((2000, 3))


@pytest.fixture
def pts2d(rng):
    return rng.random((1500, 2))


# ----------------------------------------------------------------------
# brute-force oracles
# ----------------------------------------------------------------------
def brute_knn(points: np.ndarray, q: np.ndarray, k: int, metric=L2):
    """Exact kNN by full scan; returns sorted distances."""
    diff = np.abs(points - q)
    if metric.name == "l1":
        d = diff.sum(axis=1)
    elif metric.name == "linf":
        d = diff.max(axis=1)
    else:
        d = np.sqrt((diff * diff).sum(axis=1))
    return np.sort(d)[: min(k, len(points))]


def brute_range_query(points: np.ndarray, box: Box) -> np.ndarray:
    """Exact range query: the stored points inside ``box`` (closed), as rows."""
    mask = ((points >= box.lo) & (points <= box.hi)).all(axis=1)
    return points[mask]


def brute_box_count(points: np.ndarray, box: Box) -> int:
    return len(brute_range_query(points, box))


def brute_box_points(points: np.ndarray, box: Box) -> np.ndarray:
    return brute_range_query(points, box)


def sorted_rows(a: np.ndarray) -> np.ndarray:
    """Canonical row order for multiset comparison of point arrays."""
    if len(a) == 0:
        return a
    return a[np.lexsort(a.T[::-1])]


def assert_same_points(a: np.ndarray, b: np.ndarray) -> None:
    a = np.asarray(a, dtype=np.float64).reshape(-1, a.shape[-1] if a.ndim > 1 else 1)
    b = np.asarray(b, dtype=np.float64).reshape(-1, b.shape[-1] if b.ndim > 1 else 1)
    assert a.shape == b.shape, f"shapes differ: {a.shape} vs {b.shape}"
    np.testing.assert_allclose(sorted_rows(a), sorted_rows(b))
