"""Structural tests for PIM-zd-tree: layers, chunking, residency, space."""

import numpy as np
import pytest

from repro.core import (
    Layer,
    PIMZdTree,
    PIMZdTreeConfig,
    skew_resistant,
    throughput_optimized,
)
from repro.core.chunking import iter_meta_subtree
from repro.core.node import node_words
from repro.pim import PIMSystem


def make_tree(points, variant="throughput", n_modules=16, seed=1, **cfg_over):
    system = PIMSystem(n_modules, seed=seed)
    if variant == "throughput":
        cfg = throughput_optimized(len(points), n_modules, **cfg_over)
    else:
        cfg = skew_resistant(n_modules, **cfg_over)
    return PIMZdTree(points, config=cfg, system=system)


class TestConfig:
    def test_thresholds_order_enforced(self):
        with pytest.raises(ValueError):
            PIMZdTreeConfig("bad", theta_l0=4, theta_l1=8, chunk_factor=2)

    def test_positive_parameters(self):
        with pytest.raises(ValueError):
            PIMZdTreeConfig("bad", theta_l0=4, theta_l1=0, chunk_factor=2)
        with pytest.raises(ValueError):
            PIMZdTreeConfig("bad", theta_l0=4, theta_l1=1, chunk_factor=0)
        with pytest.raises(ValueError):
            PIMZdTreeConfig("bad", theta_l0=4, theta_l1=1, chunk_factor=2, leaf_size=0)

    def test_throughput_optimized_shape(self):
        cfg = throughput_optimized(100_000, 64)
        assert cfg.theta_l1 == 1
        assert cfg.chunk_factor == cfg.theta_l0
        assert cfg.theta_l0 >= 100_000 // 64

    def test_skew_resistant_shape(self):
        cfg = skew_resistant(64)
        assert cfg.chunk_factor == 16
        assert cfg.theta_l0 >= 4 * 64
        assert 2 <= cfg.theta_l1 < cfg.theta_l0

    def test_pull_thresholds(self):
        cfg = skew_resistant(64)
        assert cfg.pull_threshold_l2 == cfg.chunk_factor
        assert cfg.pull_threshold_l1 >= cfg.chunk_factor

    def test_lazy_bounds_table1(self):
        cfg = skew_resistant(64)
        dmin, dmax = cfg.lazy_delta_bounds(0)
        assert dmin == -cfg.theta_l0 / 2 and dmax == cfg.theta_l0
        dmin1, dmax1 = cfg.lazy_delta_bounds(1)
        assert dmax1 <= cfg.theta_l1 and dmin1 == -0.5 * dmax1
        assert cfg.lazy_delta_bounds(2) == (0.0, 0.0)

    def test_lazy_disabled_bounds(self):
        cfg = skew_resistant(64, lazy_counters=False)
        assert cfg.lazy_delta_bounds(0) == (0.0, 0.0)

    def test_with_overrides(self):
        cfg = throughput_optimized(1000, 8).with_overrides(fast_l2=False)
        assert not cfg.fast_l2


class TestLayers:
    @pytest.mark.parametrize("variant", ["throughput", "skew"])
    def test_invariants(self, rng, variant):
        tree = make_tree(rng.random((4000, 3)), variant)
        tree.check_invariants()

    def test_layer_monotone_on_paths(self, rng):
        tree = make_tree(rng.random((4000, 3)), "skew")

        def rec(node):
            if node.is_leaf:
                return
            assert node.left.layer >= node.layer
            assert node.right.layer >= node.layer
            rec(node.left)
            rec(node.right)

        rec(tree.root)

    def test_l0_counts_exceed_threshold(self, rng):
        tree = make_tree(rng.random((4000, 3)), "skew", n_modules=8)
        for node in tree.l0_nodes():
            assert node.sc >= tree.config.theta_l0

    def test_root_is_l0_for_large_tree(self, rng):
        tree = make_tree(rng.random((4000, 3)), "skew", n_modules=8)
        assert tree.root.layer == Layer.L0

    def test_tiny_tree_has_no_l0(self, rng):
        tree = make_tree(rng.random((40, 3)), "skew", n_modules=8)
        # 40 < theta_l0=32? theta_l0 = 4*8 = 32; root count 40 >= 32 → L0.
        # Use an even smaller tree.
        tree2 = make_tree(rng.random((20, 3)), "skew", n_modules=8)
        assert tree2.root.layer != Layer.L0 or tree2.root.sc >= tree2.config.theta_l0
        tree2.check_invariants()

    def test_throughput_config_has_no_l2(self, rng):
        tree = make_tree(rng.random((4000, 3)), "throughput")
        stack = [tree.root]
        while stack:
            n = stack.pop()
            assert n.layer != Layer.L2  # theta_l1 = 1 → L2 empty
            if not n.is_leaf:
                stack.extend((n.left, n.right))


class TestChunking:
    def test_every_non_l0_node_has_meta(self, rng):
        tree = make_tree(rng.random((3000, 3)), "skew")
        stack = [tree.root]
        while stack:
            n = stack.pop()
            if n.layer == Layer.L0:
                assert n.meta is None
            else:
                assert n.meta is not None and n.meta in tree.metas
            if not n.is_leaf:
                stack.extend((n.left, n.right))

    def test_meta_layer_homogeneous(self, rng):
        tree = make_tree(rng.random((3000, 3)), "skew")
        stack = [tree.root]
        while stack:
            n = stack.pop()
            if n.meta is not None:
                assert n.meta.layer == n.layer
            if not n.is_leaf:
                stack.extend((n.left, n.right))

    def test_throughput_one_meta_per_region(self, rng):
        """B = θ_L0 → each L0-border subtree is a single meta-node."""
        tree = make_tree(rng.random((4000, 3)), "throughput", n_modules=8)
        regions = tree._region_roots_below(tree.root)
        # Each region root's meta holds its entire subtree.
        for rr in regions:
            stack = [rr]
            while stack:
                n = stack.pop()
                assert n.meta is rr.meta
                if not n.is_leaf:
                    stack.extend((n.left, n.right))

    def test_chunk_rule_respected_at_build(self, rng):
        tree = make_tree(rng.random((3000, 3)), "skew")
        B = tree.config.chunk_factor
        stack = [tree.root]
        while stack:
            n = stack.pop()
            if n.meta is not None and n.meta.root is not n:
                parent = n.parent
                if parent is not None and parent.meta is n.meta:
                    # Member rule: sc > root.sc / B at build time.
                    assert n.sc > tree._meta_built_sc.get(n.meta, n.meta.root.sc) / B \
                        or n.sc > n.meta.root.sc / B
            if not n.is_leaf:
                stack.extend((n.left, n.right))

    def test_meta_node_counts_match(self, rng):
        tree = make_tree(rng.random((3000, 3)), "skew")
        from collections import Counter

        counted = Counter()
        payload = Counter()
        stack = [tree.root]
        while stack:
            n = stack.pop()
            if n.meta is not None:
                counted[id(n.meta)] += 1
                payload[id(n.meta)] += node_words(n, tree.dims)
            if not n.is_leaf:
                stack.extend((n.left, n.right))
        for m in tree.metas:
            assert m.n_nodes == counted[id(m)]
            assert m.payload_words == payload[id(m)]

    def test_meta_tree_links(self, rng):
        tree = make_tree(rng.random((3000, 3)), "skew")
        tops = 0
        for m in tree.metas:
            if m.parent is None:
                tops += 1
            else:
                assert m in m.parent.children
        assert tops >= 1

    def test_sparse_dense_modes(self, rng):
        tree = make_tree(rng.random((3000, 3)), "skew")
        cfg = tree.config
        seen_sparse = seen_dense = False
        for m in tree.metas:
            if m.dense(cfg):
                seen_dense = True
                assert m.n_nodes >= cfg.chunk_factor // 4
                assert m.cycles_per_node(cfg) < 14
            else:
                seen_sparse = True
        assert seen_sparse  # small leaf chunks exist
        assert seen_dense  # the larger L1 chunks exist

    def test_chunking_disabled_gives_singletons(self, rng):
        tree = make_tree(
            rng.random((500, 3)), "skew", chunk_factor=1
        )
        for m in tree.metas:
            assert m.n_nodes == 1

    def test_l1_replica_counts(self, rng):
        tree = make_tree(rng.random((4000, 3)), "skew", n_modules=8)
        for m in tree.metas:
            if m.layer == Layer.L1:
                copies = m.replica_count()
                anc = len(m.l1_ancestors())
                desc = sum(
                    1 for x in iter_meta_subtree(m)
                    if x is not m and x.layer == Layer.L1
                )
                assert copies == anc + desc
            else:
                assert m.replica_count() == 0


class TestResidencyAndSpace:
    def test_master_words_match_meta_sizes(self, rng):
        tree = make_tree(rng.random((3000, 3)), "skew")
        expected = sum(m.size_words(tree.config) for m in tree.metas)
        assert tree.system.master_words() == pytest.approx(expected)

    def test_space_theorem_linear(self, rng):
        """Theorem 5.1: total space is O(n) for both Table 2 configs."""
        for variant in ("throughput", "skew"):
            n = 6000
            tree = make_tree(rng.random((n, 3)), variant, n_modules=8)
            total = tree.space_words()["total"]
            point_words = n * (tree.dims + 1)
            assert total < 12 * point_words, (variant, total / point_words)

    def test_space_grows_linearly(self, rng):
        sizes = [2000, 4000, 8000]
        totals = []
        for n in sizes:
            tree = make_tree(rng.random((n, 3)), "skew", n_modules=8)
            totals.append(tree.space_words()["total"])
        ratio1 = totals[1] / totals[0]
        ratio2 = totals[2] / totals[1]
        assert 1.5 < ratio1 < 2.6
        assert 1.5 < ratio2 < 2.6

    def test_l0_mode_cpu_for_small_l0(self, rng):
        tree = make_tree(rng.random((3000, 3)), "throughput")
        assert tree.l0_on_cpu  # tiny L0 fits the (default 22MB) LLC

    def test_l0_replicated_when_cache_tiny(self, rng):
        pts = rng.random((3000, 3))
        system = PIMSystem(8, seed=1, llc_bytes=2048)  # 2 KB cache
        cfg = skew_resistant(8)
        tree = PIMZdTree(pts, config=cfg, system=system)
        assert not tree.l0_on_cpu
        # Replication shows up as cache residency on every module.
        w = tree.l0_words()
        for m in system.modules:
            assert m.cache_words >= w

    def test_residency_balanced_under_hash_placement(self, rng):
        tree = make_tree(rng.random((8000, 3)), "throughput", n_modules=8)
        res = tree.system.residency()
        assert res.max() < 6 * max(1.0, res.mean())


class TestBuildCharges:
    def test_build_charges_cpu_and_upload(self, rng):
        tree = make_tree(rng.random((2000, 3)), "throughput")
        build = tree.system.stats.phases["build"]
        assert build.cpu_ops > 0
        assert build.comm_words > 0  # the upload round
        assert build.rounds >= 1

    def test_fast_zorder_flag_changes_cpu_work(self, rng):
        pts = rng.random((3000, 3))
        fast = make_tree(pts, "throughput")
        slow_cfg = throughput_optimized(len(pts), 16, fast_zorder=False)
        slow = PIMZdTree(pts, config=slow_cfg, system=PIMSystem(16, seed=1))
        assert (
            slow.system.stats.phases["build"].cpu_ops
            > fast.system.stats.phases["build"].cpu_ops
        )
