"""Unit tests for membership-filter routing (repro.route).

The contract under test: filters may only suppress **provably-empty**
sends.  Answers (search/delete/kNN) stay byte-identical to a filters-off
run, communicated words and rounds never increase, and the no-false-
negative property of the Bloom construction holds for every resident
key.  Maintenance is charged, persisted via the snapshot manifest, and
rebuilt bit-identically on crash-restart.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.core import PIMZdTree
from repro.core.config import skew_resistant
from repro.pim import PIMSystem
from repro.route import DEFAULT_FPR, RouteFilterSet
from repro.route.filters import _splitmix_array, _splitmix_int
from repro.store import DurableStore, open_backend, recover

N_MODULES = 8


def make_tree(pts, *, n_modules=N_MODULES, exec_mode=None, fpr=None,
              seed=0):
    cfg = skew_resistant(n_modules)
    if exec_mode is not None:
        cfg = cfg.with_overrides(exec_mode=exec_mode)
    tree = PIMZdTree(np.asarray(pts, dtype=np.float64), config=cfg,
                     system=PIMSystem(n_modules, seed=0),
                     bounds=(np.zeros(pts.shape[1]), np.ones(pts.shape[1])))
    if fpr is not None:
        RouteFilterSet(tree, fpr=fpr, seed=seed)
    return tree


def search_presence(results):
    """The observable answer of a point lookup: present or not."""
    out = []
    for r in results:
        present = False
        if r.leaf is not None and r.leaf.keys is not None:
            key = np.uint64(r.key)
            j = int(np.searchsorted(r.leaf.keys, key))
            present = j < len(r.leaf.keys) and r.leaf.keys[j] == key
        out.append(present)
    return out


def comm_words(tree) -> float:
    return tree.system.stats.to_dict()["total"]["comm_words"]


# ----------------------------------------------------------------------
# hashing + construction invariants
# ----------------------------------------------------------------------
def test_scalar_and_vector_hash_agree():
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 2**63, size=500, dtype=np.uint64)
    for salt in (0, 1, 17, 2**40 + 5):
        vec = _splitmix_array(keys, salt)
        for key, h in zip(keys[:50], vec[:50]):
            assert _splitmix_int(int(key), salt) == int(h)


def test_no_false_negatives_over_resident_keys():
    rng = np.random.default_rng(5)
    tree = make_tree(rng.random((3000, 3)), fpr=0.01)
    rf = tree.route_filters
    for meta in tree.metas:
        stack = [meta.root]
        while stack:
            node = stack.pop()
            if node.meta is not meta:
                continue
            if node.keys is not None:
                for key in node.keys:
                    assert rf._probe_global(int(key))
                    assert rf._probe_module(meta.module, int(key))
                continue
            stack.append(node.left)
            stack.append(node.right)


def test_meta_info_closedness_is_structural():
    rng = np.random.default_rng(6)
    tree = make_tree(rng.random((4000, 3)), fpr=0.01)
    rf = tree.route_filters
    for meta in tree.metas:
        crosses = False
        stack = [meta.root]
        while stack:
            node = stack.pop()
            if node.meta is not meta:
                crosses = True
                continue
            if node.keys is None:
                stack.append(node.left)
                stack.append(node.right)
        assert rf._meta_info[meta.root.nid][3] == (not crosses)


def test_fpr_validation():
    rng = np.random.default_rng(7)
    tree = make_tree(rng.random((200, 2)))
    for bad in (0.0, -0.1, 0.5, 1.0):
        with pytest.raises(ValueError):
            RouteFilterSet(tree, fpr=bad)


# ----------------------------------------------------------------------
# byte-identity + monotone savings
# ----------------------------------------------------------------------
@pytest.mark.parametrize("exec_mode", ["reference", "vectorized"])
def test_search_answers_identical_and_words_fewer(exec_mode):
    rng = np.random.default_rng(11)
    pts = rng.random((4000, 3))
    queries = np.vstack([pts[:80], rng.random((80, 3))])
    t0 = make_tree(pts, exec_mode=exec_mode)
    t1 = make_tree(pts, exec_mode=exec_mode, fpr=0.01)
    r0 = t0.search(queries)
    r1 = t1.search(queries)
    assert search_presence(r0) == search_presence(r1)
    assert comm_words(t1) < comm_words(t0)
    rf = t1.route_filters
    assert rf.queries_pruned > 0
    assert rf.words_saved > 0
    # Every probed absent key is either pruned or a false positive.
    absent = sum(1 for r, p in zip(r1, search_presence(r1)) if not p)
    assert rf.queries_pruned + rf.fp_probes <= absent + rf.probes


@pytest.mark.parametrize("exec_mode", ["reference", "vectorized"])
def test_delete_identical_and_words_fewer(exec_mode):
    rng = np.random.default_rng(13)
    pts = rng.random((4000, 3))
    delq = np.vstack([pts[200:260], rng.random((60, 3))])
    t0 = make_tree(pts, exec_mode=exec_mode)
    t1 = make_tree(pts, exec_mode=exec_mode, fpr=0.01)
    assert t0.delete(delq) == t1.delete(delq) == 60
    assert comm_words(t1) < comm_words(t0)
    a0, a1 = t0.all_points(), t1.all_points()
    order = np.lexsort(a0.T[::-1])
    assert np.array_equal(a0[order], a1[np.lexsort(a1.T[::-1])])


@pytest.mark.parametrize("exec_mode", ["reference", "vectorized"])
def test_knn_identical_and_words_never_more(exec_mode):
    rng = np.random.default_rng(17)
    pts = rng.random((4000, 3))
    qs = rng.random((40, 3))
    t0 = make_tree(pts, exec_mode=exec_mode)
    t1 = make_tree(pts, exec_mode=exec_mode, fpr=0.01)
    for (d0, p0), (d1, p1) in zip(t0.knn(qs, 5), t1.knn(qs, 5)):
        assert np.array_equal(d0, d1)
        assert np.array_equal(p0, p1)
    assert comm_words(t1) <= comm_words(t0)


def test_insert_phase_never_pruned_and_filters_maintained():
    rng = np.random.default_rng(19)
    pts = rng.random((2000, 3))
    t0 = make_tree(pts)
    t1 = make_tree(pts, fpr=0.01)
    fresh = rng.random((150, 3))
    t0.insert(fresh)
    t1.insert(fresh)
    order = np.lexsort(t0.all_points().T[::-1])
    assert np.array_equal(t0.all_points()[order],
                          t1.all_points()[np.lexsort(t1.all_points().T[::-1])])
    # The maintained filters immediately cover the fresh keys: lookups of
    # just-inserted points are never pruned.
    res = t1.search(fresh)
    assert all(search_presence(res))
    assert all(not r.pruned for r in res)
    assert t1.route_filters.rebuilds >= 2  # attach + insert maintenance


def test_disabled_filters_change_nothing():
    rng = np.random.default_rng(23)
    pts = rng.random((1500, 3))
    queries = rng.random((60, 3))
    t0 = make_tree(pts)
    t1 = make_tree(pts)
    RouteFilterSet(t1, fpr=0.01, enabled=False)
    snap0 = t0.system.stats.to_dict()
    snap1 = t1.system.stats.to_dict()
    t0.search(queries)
    t1.search(queries)
    d0 = comm_words(t0) - snap0["total"]["comm_words"]
    d1 = comm_words(t1) - snap1["total"]["comm_words"]
    assert d0 == d1
    assert t1.route_filters.queries_pruned == 0
    assert t1.route_filters.probes == 0


def test_maintenance_is_charged_under_route_phase():
    rng = np.random.default_rng(29)
    tree = make_tree(rng.random((1000, 3)))
    before = tree.system.stats.to_dict()["total"]
    RouteFilterSet(tree, fpr=0.01)
    after = tree.system.stats.to_dict()
    assert after["total"]["cpu_ops"] > before["cpu_ops"]
    assert after["total"]["dram_words"] > before["dram_words"]
    assert "route" in after["phases"]
    # Filter maintenance never touches the interconnect.
    assert after["phases"]["route"]["comm_words"] == 0


def test_summary_counters():
    rng = np.random.default_rng(31)
    pts = rng.random((2000, 3))
    tree = make_tree(pts, fpr=0.05)
    tree.search(rng.random((50, 3)))
    s = tree.route_filters.summary()
    assert s["enabled"] is True
    assert s["fpr"] == 0.05
    assert s["queries_pruned"] >= 1
    assert s["words_saved"] >= 2 * s["queries_pruned"]
    assert s["probes"] >= s["queries_pruned"]
    assert s["rebuilds"] == 1
    assert s["keys_indexed"] >= len(pts)
    assert s["filter_kib"] > 0


@pytest.mark.parametrize("exec_mode", ["reference", "vectorized"])
def test_replicated_l0_gate(exec_mode):
    """With L0 replicated on the modules (tiny LLC), even the routing
    round is a send — the global filter must gate it, keep answers
    identical, and shave the round participation of absent keys."""
    rng = np.random.default_rng(43)
    pts = rng.random((4000, 3))
    queries = np.vstack([pts[:80], rng.random((80, 3))])

    def mk(fpr):
        cfg = skew_resistant(N_MODULES).with_overrides(exec_mode=exec_mode)
        tree = PIMZdTree(pts, config=cfg,
                         system=PIMSystem(N_MODULES, llc_bytes=4096, seed=0),
                         bounds=(np.zeros(3), np.ones(3)))
        if fpr is not None:
            RouteFilterSet(tree, fpr=fpr)
        return tree

    t0, t1 = mk(None), mk(0.01)
    assert not t0.l0_on_cpu and not t1.l0_on_cpu
    base0, base1 = comm_words(t0), comm_words(t1)
    r0 = t0.search(queries)
    r1 = t1.search(queries)
    assert search_presence(r0) == search_presence(r1)
    spent0 = comm_words(t0) - base0
    spent1 = comm_words(t1) - base1
    rf = t1.route_filters
    assert rf.queries_pruned > 0
    # Every pruned query skips its L0-round send (2) + trace return (3).
    assert spent0 - spent1 >= 5 * rf.queries_pruned
    assert t0.delete(queries[:40]) == t1.delete(queries[:40]) == 40


# ----------------------------------------------------------------------
# incremental insert-only maintenance
# ----------------------------------------------------------------------
def _filter_bits(rf):
    return (rf._global.words.copy(),
            {mid: f.words.copy() for mid, f in rf._filters.items()},
            dict(rf._meta_info))


def _assert_bits_equal(a, b):
    g0, mods0, meta0 = a
    g1, mods1, meta1 = b
    assert np.array_equal(g0, g1)
    assert sorted(mods0) == sorted(mods1)
    for mid in mods0:
        assert np.array_equal(mods0[mid], mods1[mid]), mid
    assert meta0 == meta1


def test_insert_incremental_bits_match_full_rebuild():
    """A small insert-only batch (no leaf splits, no Bloom-geometry
    growth) is served by the in-place OR path, and the resulting bit
    arrays are identical to a full rebuild over the same residency (the
    OR-of-hashes argument, checked on real bits)."""
    rng = np.random.default_rng(47)
    t = make_tree(rng.random((2600, 3)), fpr=0.01)
    rf = t.route_filters
    t.insert(rng.random((4, 3)))
    assert rf.incremental == 1
    assert rf.rebuilds == 2  # attach (full) + insert (incremental)
    after_inc = _filter_bits(rf)
    rf.rebuild()  # nothing staged -> the full path, same residency
    assert rf.incremental == 1 and rf.rebuilds == 3
    _assert_bits_equal(after_inc, _filter_bits(rf))
    assert rf.summary()["incremental"] == 1


def test_incremental_maintenance_charges_less():
    """The incremental path charges per *new* key; the full rebuild
    re-hashes every resident key.  At 4 new keys over 2600 resident the
    route-phase CPU delta must be far smaller."""
    rng = np.random.default_rng(53)
    t = make_tree(rng.random((2600, 3)), fpr=0.01)
    rf = t.route_filters

    def route_cpu():
        return t.system.stats.to_dict()["phases"]["route"]["cpu_ops"]

    base = route_cpu()
    t.insert(rng.random((4, 3)))
    inc_cost = route_cpu() - base
    assert rf.incremental == 1
    base = route_cpu()
    rf.rebuild()  # full
    full_cost = route_cpu() - base
    assert inc_cost > 0
    assert inc_cost * 5 < full_cost


def test_delete_takes_the_full_rebuild_path():
    """Deletes never stage, so their rebuild is the full one — the
    incremental counter must not move."""
    rng = np.random.default_rng(59)
    pts = rng.random((2500, 3))
    t = make_tree(pts, fpr=0.01)
    rf = t.route_filters
    assert t.delete(pts[:40]) == 40
    assert rf.rebuilds >= 2
    assert rf.incremental == 0


def test_geometry_growth_falls_back_to_full_rebuild():
    """A batch big enough to grow the Bloom geometry cannot be served in
    place (the sizing check fails) — it falls back to the full rebuild
    and the fresh keys are still covered."""
    rng = np.random.default_rng(61)
    t = make_tree(rng.random((3000, 3)), fpr=0.01)
    rf = t.route_filters
    m_before = rf._global.m_bits
    fresh = rng.random((300, 3))
    t.insert(fresh)
    assert rf.incremental == 0
    assert rf.rebuilds >= 2
    assert rf._global.m_bits > m_before
    res = t.search(fresh)
    assert all(search_presence(res))
    assert all(not r.pruned for r in res)


def test_incremental_with_replicas_covers_copies():
    """With chunk replicas attached, the incremental path must OR the new
    keys into every secondary module's filter too — checked by comparing
    against the full rebuild bit-for-bit."""
    from repro.replicate import ReplicaSet, ReplicationConfig

    rng = np.random.default_rng(67)
    t = make_tree(rng.random((2600, 3)))
    ReplicaSet(t, ReplicationConfig(k=2, write_policy="write-all",
                                    staleness_bound_s=1e-3)).replicate_all()
    RouteFilterSet(t, fpr=0.01)
    rf = t.route_filters
    fresh = rng.random((4, 3))
    t.insert(fresh)
    assert rf.incremental == 1
    after_inc = _filter_bits(rf)
    rf.rebuild()
    _assert_bits_equal(after_inc, _filter_bits(rf))
    res = t.search(fresh)
    assert all(search_presence(res))
    assert all(not r.pruned for r in res)


# ----------------------------------------------------------------------
# persistence: manifest round-trip + crash-restart rebuild
# ----------------------------------------------------------------------
def test_manifest_roundtrip_and_crash_restart_rebuilds_bits():
    rng = np.random.default_rng(37)
    pts = rng.random((1200, 3))
    with tempfile.TemporaryDirectory() as tmp:
        tree = PIMZdTree(pts, system=PIMSystem(4, seed=3))
        RouteFilterSet(tree, fpr=0.02, seed=9)
        store = DurableStore(open_backend("file", Path(tmp) / "s"))
        store.attach(tree)
        tree.insert(rng.random((40, 3)))
        res = recover(store.backend, cost_model=tree.cost_model)
        store.backend.close()

    rf0, rf1 = tree.route_filters, res.tree.route_filters
    assert rf1 is not None
    assert (rf1.fpr, rf1.seed, rf1.enabled) == (0.02, 9, True)
    assert np.array_equal(rf0._global.words, rf1._global.words)
    assert sorted(rf0._filters) == sorted(rf1._filters)
    for mid in rf0._filters:
        assert np.array_equal(rf0._filters[mid].words,
                              rf1._filters[mid].words), mid
    assert rf0._meta_info == rf1._meta_info
    # Recovery charges (incl. the filter rebuild) all land in "recovery".
    assert sorted(res.system.stats.phases) == ["recovery"]


def test_manifest_absent_without_filters():
    from repro.store import encode_tree

    rng = np.random.default_rng(41)
    tree = PIMZdTree(rng.random((300, 3)), system=PIMSystem(4, seed=3))
    img = encode_tree(tree, wal_seq=0)
    assert "route_filters" not in img.manifest
    RouteFilterSet(tree, fpr=DEFAULT_FPR)
    img2 = encode_tree(tree, wal_seq=0)
    assert img2.manifest["route_filters"] == {
        "fpr": DEFAULT_FPR, "seed": 0, "enabled": True}
