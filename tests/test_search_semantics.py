"""Detailed tests of batched SEARCH (Alg. 1) semantics and charging."""

import numpy as np
import pytest

from conftest import assert_same_points, brute_range_query
from repro.core import PIMZdTree, skew_resistant, throughput_optimized
from repro.core.geometry import Box
from repro.core.node import Layer
from repro.pim import PIMSystem


def make_tree(points, variant="skew", n_modules=8, seed=1, llc_bytes=None, **cfg_over):
    kw = {"seed": seed}
    if llc_bytes is not None:
        kw["llc_bytes"] = llc_bytes
    system = PIMSystem(n_modules, **kw)
    if variant == "throughput":
        cfg = throughput_optimized(len(points), n_modules, **cfg_over)
    else:
        cfg = skew_resistant(n_modules, **cfg_over)
    return PIMZdTree(points, config=cfg, system=system)


class TestSearchResults:
    def test_every_stored_point_found(self, rng):
        pts = rng.random((2500, 3))
        tree = make_tree(pts)
        results = tree.search(pts)
        for res in results:
            assert res.leaf is not None
            # The point's key must actually be stored in that leaf.
            assert np.uint64(res.key) in res.leaf.keys

    def test_keys_match_codec(self, rng):
        pts = rng.random((500, 3))
        tree = make_tree(pts)
        results = tree.search(pts[:20])
        keys = tree.codec.encode(pts[:20])
        for res, k in zip(results, keys.tolist()):
            assert res.key == int(k)

    def test_qids_are_positional(self, rng):
        pts = rng.random((500, 3))
        tree = make_tree(pts)
        results = tree.search(pts[:10])
        assert [r.qid for r in results] == list(range(10))

    def test_trace_layers_descend(self, rng):
        pts = rng.random((4000, 3))
        tree = make_tree(pts, "skew")
        for res in tree.search(pts[:20]):
            layers = [n.layer for n in res.trace]
            assert layers == sorted(layers), "layers must not go back up"

    def test_deterministic(self, rng):
        pts = rng.random((1000, 3))
        t1 = make_tree(pts, seed=9)
        t2 = make_tree(pts, seed=9)
        r1 = t1.search(pts[:50])
        r2 = t2.search(pts[:50])
        for a, b in zip(r1, r2):
            assert a.leaf.nid == b.leaf.nid


class TestL0Modes:
    def test_replicated_l0_charges_pim(self, rng):
        """With a tiny LLC, L0 replicates and step 1 runs on the modules."""
        pts = rng.random((4000, 3))
        tree = make_tree(pts, "skew", llc_bytes=2048)
        assert not tree.l0_on_cpu
        snap = tree.system.snapshot()
        tree.search(pts[:100])
        d = tree.system.stats.diff(snap).total
        assert d.pim_cycles > 0
        # The L0 partition round adds one extra round vs the CPU-L0 mode.
        assert d.rounds >= 2

    def test_cpu_l0_touches_llc(self, rng):
        pts = rng.random((4000, 3))
        tree = make_tree(pts, "skew")
        assert tree.l0_on_cpu
        hits_before = tree.system.llc.hits
        tree.search(pts[:200])
        assert tree.system.llc.hits > hits_before  # warm L0 blocks hit

    def test_same_results_both_modes(self, rng):
        pts = rng.random((3000, 3))
        big = make_tree(pts, "skew", seed=3)
        small = make_tree(pts, "skew", seed=3, llc_bytes=2048)
        q = pts[:64]
        r_big = big.search(q)
        r_small = small.search(q)
        for a, b in zip(r_big, r_small):
            assert int(a.leaf.keys[0]) == int(b.leaf.keys[0])


class TestSearchCosts:
    def test_comm_scales_linearly_with_batch(self, rng):
        pts = rng.random((8000, 3))
        tree = make_tree(pts, "throughput")

        def comm(batch):
            snap = tree.system.snapshot()
            tree.search(rng.random((batch, 3)))
            return tree.system.stats.diff(snap).total.comm_words

        c1 = comm(200)
        c2 = comm(800)
        assert 2.5 * c1 < c2 < 6 * c1

    def test_pim_work_proportional_to_depth(self, rng):
        small = make_tree(rng.random((1000, 3)), "throughput", seed=5)
        big = make_tree(rng.random((32000, 3)), "throughput", seed=5)

        def cyc_per_op(tree):
            q = rng.random((300, 3))
            snap = tree.system.snapshot()
            tree.search(q)
            return tree.system.stats.diff(snap).total.pim_cycles / 300

        # Deeper trees cost more PIM work per search (O(log n) visits).
        assert cyc_per_op(big) > cyc_per_op(small)

    def test_search_has_no_dram_blowup(self, rng):
        pts = rng.random((4000, 3))
        tree = make_tree(pts, "throughput")
        snap = tree.system.snapshot()
        tree.search(pts[:500])
        d = tree.system.stats.diff(snap).total
        # Searches stream the batch and touch the small L0: traffic per op
        # must stay within tens of words.
        assert d.dram_words / 500 < 64


class TestEmptyAndEdgeBatches:
    def test_empty_batch(self, rng):
        tree = make_tree(rng.random((500, 3)))
        assert tree.search(np.empty((0, 3))) == []

    def test_single_query(self, rng):
        pts = rng.random((500, 3))
        tree = make_tree(pts)
        res = tree.search(pts[:1])
        assert len(res) == 1 and res[0].leaf is not None

    def test_out_of_bounds_query_clipped(self, rng):
        pts = rng.random((500, 3)) * 0.5 + 0.25
        tree = make_tree(pts)
        res = tree.search(np.array([[9.0, 9.0, 9.0]]))
        assert len(res) == 1
        # Clipped onto the box surface: either a leaf or a clean edge report.
        assert (res[0].leaf is not None) != (res[0].edge is not None)


class TestRangeOracle:
    """box_fetch must return the exact brute-force point set, per exec mode."""

    @pytest.mark.parametrize("exec_mode", ["reference", "vectorized"])
    def test_box_fetch_matches_brute_range_query(self, rng, exec_mode):
        pts = rng.random((3000, 3))
        tree = make_tree(pts, exec_mode=exec_mode)
        centers = pts[rng.integers(0, len(pts), size=16)]
        for c, side in zip(centers, rng.random(16) * 0.3 + 0.02):
            box = Box(c - side / 2, c + side / 2)
            got = tree.box_fetch([box])[0]
            assert_same_points(got, brute_range_query(pts, box))

    @pytest.mark.parametrize("exec_mode", ["reference", "vectorized"])
    def test_box_fetch_oracle_after_updates(self, rng, exec_mode):
        pts = rng.random((2000, 2))
        tree = make_tree(pts, "throughput", exec_mode=exec_mode)
        fresh = rng.random((300, 2))
        tree.insert(fresh)
        gone = pts[rng.integers(0, len(pts), size=250)]
        tree.delete(gone)
        live = np.vstack([pts, fresh])
        # Rebuild the live multiset the way delete defines it (all exact
        # duplicates of each query row are removed).
        keep = ~(live[:, None, :] == gone[None, :, :]).all(axis=2).any(axis=1)
        live = live[keep]
        box = Box(np.full(2, 0.2), np.full(2, 0.7))
        assert_same_points(tree.box_fetch([box])[0],
                           brute_range_query(live, box))
