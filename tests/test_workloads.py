"""Tests for the workload generators and skew statistics (§7.1–7.3)."""

import numpy as np
import pytest

from repro.workloads import (
    bin_points,
    bursty_arrivals,
    cosmos_like_points,
    diurnal_arrivals,
    gini_coefficient,
    max_alpha,
    osm_like_points,
    poisson_arrivals,
    uniform_points,
    varden_points,
    zipf_exponent_fit,
    zipf_mix_queries,
)


GENERATORS = [uniform_points, cosmos_like_points, osm_like_points, varden_points]


class TestBasics:
    @pytest.mark.parametrize("gen", GENERATORS)
    def test_shape_and_domain(self, gen):
        pts = gen(5000, 3, seed=1)
        assert pts.shape == (5000, 3)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_deterministic_by_seed(self, gen):
        a = gen(2000, 3, seed=7)
        b = gen(2000, 3, seed=7)
        np.testing.assert_array_equal(a, b)
        c = gen(2000, 3, seed=8)
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_2d_supported(self, gen):
        pts = gen(1000, 2, seed=0)
        assert pts.shape == (1000, 2)

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_accepts_generator_object(self, gen):
        rng = np.random.default_rng(5)
        pts = gen(500, 3, rng)
        assert pts.shape == (500, 3)


class TestSkewCalibration:
    """The synthetic datasets must match the published Gini coefficients:
    COSMOS ≈ 0.287, OSM ≈ 0.967 over 2048 bins (§7.2)."""

    def test_uniform_low_gini(self):
        g = gini_coefficient(uniform_points(60_000, 3, 0), 2048)
        assert g < 0.15

    def test_cosmos_moderate_gini(self):
        g = gini_coefficient(cosmos_like_points(60_000, 3, 0), 2048)
        assert 0.2 < g < 0.42

    def test_osm_extreme_gini(self):
        g = gini_coefficient(osm_like_points(60_000, 3, 0), 2048)
        assert g > 0.9

    def test_varden_extreme_gini(self):
        g = gini_coefficient(varden_points(60_000, 3, 0), 2048)
        assert g > 0.9

    def test_ordering(self):
        gs = [
            gini_coefficient(gen(40_000, 3, 0), 2048)
            for gen in (uniform_points, cosmos_like_points, osm_like_points)
        ]
        assert gs[0] < gs[1] < gs[2]

    def test_osm_zipf_exponent(self):
        counts = bin_points(osm_like_points(60_000, 3, 0), 2048)
        z = zipf_exponent_fit(counts)
        assert z > 0.8  # paper: ≈ 1.5 for real OSM

    def test_cosmos_zipf_below_osm(self):
        zc = zipf_exponent_fit(bin_points(cosmos_like_points(60_000, 3, 0), 2048))
        zo = zipf_exponent_fit(bin_points(osm_like_points(60_000, 3, 0), 2048))
        assert zc < zo


class TestGini:
    def test_all_equal_counts_zero(self):
        assert gini_coefficient(np.full(100, 5)) == pytest.approx(0.0, abs=0.02)

    def test_single_hot_bin_near_one(self):
        counts = np.zeros(1000)
        counts[0] = 1e6
        assert gini_coefficient(counts) > 0.99

    def test_empty_input(self):
        assert gini_coefficient(np.array([])) == 0.0

    def test_bounds(self, rng):
        counts = rng.integers(0, 100, 500)
        g = gini_coefficient(counts)
        assert 0.0 <= g <= 1.0

    def test_bin_points_total(self, rng):
        pts = rng.random((5000, 2))
        counts = bin_points(pts, 1024)
        assert counts.sum() == 5000


class TestAlphaBetaSkew:
    def test_uniform_keys_high_alpha(self, rng):
        keys = rng.random(10_000)
        a = max_alpha(keys, beta=16, key_range=(0, 1))
        assert a > 8  # ideal alpha = beta = 16

    def test_point_mass_alpha_one(self):
        keys = np.full(1000, 0.5)
        assert max_alpha(keys, beta=16, key_range=(0, 1)) == pytest.approx(1.0)

    def test_empty_batch(self):
        assert max_alpha(np.array([]), 4) == float("inf")

    def test_monotone_in_concentration(self, rng):
        spread = rng.random(5000)
        tight = rng.random(5000) * 0.05
        assert max_alpha(spread, 32, key_range=(0, 1)) > max_alpha(
            tight, 32, key_range=(0, 1)
        )


class TestZipfMix:
    def test_fraction_zero_is_uniform(self, rng):
        base = rng.random((1000, 3))
        q = zipf_mix_queries(base, 4000, 0.0, seed=1)
        assert q.shape == (4000, 3)
        assert gini_coefficient(q, 512) < 0.5

    def test_fraction_one_is_skewed(self, rng):
        base = rng.random((1000, 3))
        q = zipf_mix_queries(base, 4000, 1.0, seed=1)
        assert gini_coefficient(q, 512) > 0.8

    def test_mix_monotone_in_fraction(self, rng):
        base = rng.random((1000, 3))
        gs = [
            gini_coefficient(zipf_mix_queries(base, 4000, f, seed=1), 512)
            for f in (0.0, 0.2, 1.0)
        ]
        assert gs[0] < gs[2]

    def test_queries_within_base_extent(self, rng):
        base = rng.random((1000, 3)) * 0.5 + 0.2
        q = zipf_mix_queries(base, 300, 0.0, seed=2)
        assert q.min() >= 0.2 - 1e-9 and q.max() <= 0.7 + 1e-9


ARRIVAL_PROCESSES = [poisson_arrivals, bursty_arrivals, diurnal_arrivals]


class TestArrivalProcesses:
    @pytest.mark.parametrize("proc", ARRIVAL_PROCESSES)
    def test_sorted_positive_and_sized(self, proc):
        t = proc(1000.0, 500, seed=3)
        assert t.shape == (500,)
        assert np.all(t > 0)
        assert np.all(np.diff(t) >= 0)

    @pytest.mark.parametrize("proc", ARRIVAL_PROCESSES)
    def test_deterministic_by_seed(self, proc):
        a = proc(500.0, 200, seed=9)
        b = proc(500.0, 200, seed=9)
        np.testing.assert_array_equal(a, b)
        c = proc(500.0, 200, seed=10)
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize("proc", ARRIVAL_PROCESSES)
    def test_mean_rate_close_to_requested(self, proc):
        rate = 2000.0
        n = 8000
        t = proc(rate, n, seed=5)
        # Empirical rate over the generated span within 15% of requested
        # (all three processes are normalised to the same long-run mean).
        assert n / t[-1] == pytest.approx(rate, rel=0.15)

    def test_bursty_is_burstier_than_poisson(self):
        rate, n = 1000.0, 6000
        poisson_gaps = np.diff(poisson_arrivals(rate, n, seed=7))
        bursty_gaps = np.diff(bursty_arrivals(rate, n, seed=7))
        # Squared coefficient of variation: 1 for Poisson, > 1 for MMPP.
        def cv2(g):
            return float(np.var(g) / np.mean(g) ** 2)
        assert cv2(bursty_gaps) > 1.5 * cv2(poisson_gaps)

    def test_diurnal_rate_modulates(self):
        t = diurnal_arrivals(1000.0, 8000, seed=2, day_s=4.0,
                             peak_to_trough=6.0)
        counts, _ = np.histogram(t, bins=np.arange(0.0, t[-1], 0.5))
        # Peak half-second buckets must see far more arrivals than troughs.
        assert counts.max() > 2.0 * max(1, counts.min())

    @pytest.mark.parametrize("proc", ARRIVAL_PROCESSES)
    def test_invalid_rate_rejected(self, proc):
        with pytest.raises(ValueError):
            proc(0.0, 10)

    def test_arrival_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(10.0, -1)
        with pytest.raises(ValueError):
            bursty_arrivals(10.0, 5, burst_fraction=1.5)
        with pytest.raises(ValueError):
            bursty_arrivals(10.0, 5, burst_factor=0.5)
        with pytest.raises(ValueError):
            diurnal_arrivals(10.0, 5, peak_to_trough=0.5)
