"""Run-to-run determinism of the measurement harness.

The whole evaluation pipeline threads explicit ``np.random.Generator``
state (no module-level RNG anywhere), and the simulator itself must not
depend on object identity (set/dict hash order).  Two identical harness
runs therefore have to produce *byte-identical* measurements — this is
what makes the golden-stats snapshots and the CI smoke diff meaningful.

Historical note: meta-node rechunking used to iterate an identity-hashed
``set[MetaNode]``, which made update-phase comm counters vary with memory
addresses; ``PIMZdTree.rechunk_stale`` now orders the rebuilds by root
nid.  The suite-level assertions here lock that down.
"""

from __future__ import annotations

import numpy as np

from repro.eval.harness import PIMZdTreeAdapter, run_suite
from repro.workloads import (
    cosmos_like_points,
    osm_like_points,
    uniform_points,
    varden_points,
)

OPS = ("insert", "bc-10", "bf-10", "10-nn")


def _one_run(exec_mode: str):
    data = uniform_points(4000, 3, seed=np.random.default_rng(123))
    fresh_rng = np.random.default_rng(456)

    def fresh(n: int) -> np.ndarray:
        return uniform_points(n, 3, seed=fresh_rng)

    ad = PIMZdTreeAdapter(data, n_modules=8, seed=5, exec_mode=exec_mode)
    ms = run_suite(ad, data=data, ops=OPS, batch=128, seed=11,
                   fresh_points=fresh)
    ad.tree.delete(uniform_points(200, 3, seed=np.random.default_rng(789)))
    return ms, ad.system.stats


def _assert_measurements_identical(a, b) -> None:
    assert len(a) == len(b)
    for ma, mb in zip(a, b):
        assert ma.op == mb.op
        assert ma.ops == mb.ops
        assert ma.elements == mb.elements
        assert ma.sim_time_s == mb.sim_time_s, ma.op
        assert ma.traffic_bytes == mb.traffic_bytes, ma.op
        assert (ma.cpu_s, ma.pim_s, ma.comm_s) == (mb.cpu_s, mb.pim_s,
                                                   mb.comm_s), ma.op
        assert ma.batch_times_s == mb.batch_times_s, ma.op
        assert ma.phases == mb.phases, ma.op


def test_two_harness_runs_are_identical():
    for mode in ("vectorized", "reference"):
        ms1, st1 = _one_run(mode)
        ms2, st2 = _one_run(mode)
        _assert_measurements_identical(ms1, ms2)
        assert st1 == st2, f"PIMStats differ between identical {mode} runs"


def test_generators_thread_one_rng():
    """Generators consume a caller-owned Generator; same seed → same stream."""
    for gen in (uniform_points, varden_points, cosmos_like_points,
                osm_like_points):
        r1, r2 = np.random.default_rng(42), np.random.default_rng(42)
        a = np.vstack([gen(500, 3, seed=r1) for _ in range(3)])
        b = np.vstack([gen(500, 3, seed=r2) for _ in range(3)])
        np.testing.assert_array_equal(a, b)
        # The stream advances: a second draw from the same Generator must
        # not repeat the first (i.e. no internal reseeding from a constant).
        assert not np.array_equal(a[:500], a[500:1000])
