"""Differential oracle for the simulator cores: scalar vs. vector sim_mode.

The array-backed vector core (``repro.pim.vector``) must be a byte-exact
drop-in for the per-module scalar oracle: for any charging script — scalar
calls, dict-keyed bulk calls, array-native calls, phases, zero amounts,
faults — both ``sim_mode="scalar"`` and ``sim_mode="vector"`` must produce
byte-identical :class:`repro.pim.stats.PIMStats`.

Also locks down the PR's scalar-path bugfixes:

* zero-charge unification — ``charge_pim``/``send``/``recv`` with a zero
  amount are complete no-ops, matching the bulk/array entry points;
* residency clamp — ``free_master``/``free_cache`` snap a within-tolerance
  negative residual to exactly 0.0 (drift cannot accumulate);
* broadcast fan-out atomicity — a drop mid-broadcast no longer leaves
  later modules silently unsent;
* ``HotnessTracker.transfer`` guards (self-transfer, dead destination).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance import HotnessTracker
from repro.faults import FaultPlan, MessageLoss
from repro.pim import PIMSystem

pytestmark = []


def both_systems(n=4, **kw):
    return (PIMSystem(n, sim_mode="scalar", **kw),
            PIMSystem(n, sim_mode="vector", **kw))


def assert_stats_identical(scalar: PIMSystem, vector: PIMSystem) -> None:
    a, b = scalar.stats, vector.stats
    if a == b:
        assert a.to_dict() == b.to_dict()
        return
    lines = [f"total:\n  scalar={a.total}\n  vector={b.total}"]
    for lab in sorted(set(a.phases) | set(b.phases)):
        pa, pb = a.phases.get(lab), b.phases.get(lab)
        if pa != pb:
            lines.append(f"phase {lab}:\n  scalar={pa}\n  vector={pb}")
    raise AssertionError("sim modes diverge:\n" + "\n".join(lines))


# ======================================================================
# zero-charge unification (bugfix)
# ======================================================================
class TestZeroChargeSemantics:
    def test_zero_scalar_charges_book_nothing(self):
        for mode in ("scalar", "vector"):
            sys = PIMSystem(4, sim_mode=mode)
            before = sys.snapshot()
            with sys.round():
                sys.charge_pim(0, 0)
                sys.send(1, 0.0)
                sys.recv(2, 0)
            d = sys.stats.diff(before).total
            assert d.rounds == 0, mode
            assert sys.stats.mux_switches == 0, mode
            assert d.pim_cycles == 0 and d.comm_words == 0, mode

    def test_scalar_vs_bulk_identical_with_zeros(self):
        """The regression the tentpole gated on: zeros through the scalar
        entry points must book exactly what the bulk path books."""
        script = [(0, 10.0), (1, 0.0), (2, 7.0), (3, 0.0), (0, 0.0), (2, 3.0)]
        a = PIMSystem(4, sim_mode="scalar")
        b = PIMSystem(4, sim_mode="scalar")
        with a.round():
            for mid, amt in script:
                a.charge_pim(mid, amt)
                a.send(mid, amt)
                a.recv(mid, amt * 2)
        with b.round():
            for mid, amt in script:
                b.charge_pim_bulk({mid: amt})
                b.send_bulk({mid: amt})
                b.recv_bulk({mid: amt * 2})
        assert a.stats == b.stats
        assert a.stats.to_dict() == b.stats.to_dict()

    def test_zero_only_round_is_empty(self):
        sys = PIMSystem(2)
        with sys.round():
            sys.send(0, 0.0)
        assert sys.stats.total.rounds == 0
        assert sys.stats.mux_switches == 0

    def test_zero_send_consumes_no_drop_rng(self):
        """A zero-word send must not roll the drop RNG (bulk never did)."""
        plan_a = FaultPlan(seed=5, drop_rate=0.5)
        plan_b = FaultPlan(seed=5, drop_rate=0.5)
        a = PIMSystem(2, fault_plan=plan_a)
        b = PIMSystem(2, fault_plan=plan_b)

        def run(sys, with_zero):
            outcomes = []
            for _ in range(20):
                with sys.round():
                    if with_zero:
                        sys.send(1, 0.0)
                    try:
                        sys.send(0, 4)
                        outcomes.append("ok")
                    except MessageLoss:
                        outcomes.append("drop")
            return outcomes

        assert run(a, with_zero=True) == run(b, with_zero=False)


# ======================================================================
# residency clamp (bugfix)
# ======================================================================
class TestResidencyClamp:
    @pytest.mark.parametrize("mode", ["scalar", "vector"])
    def test_drift_clamps_to_exact_zero(self, mode):
        sys = PIMSystem(2, sim_mode=mode)
        m = sys.modules[0]
        # 0.1 is inexact in binary; ten allocs/frees drift below zero by
        # ~1e-17 — within tolerance, so the residual must snap to 0.0.
        for _ in range(10):
            m.alloc_master(0.1)
            m.alloc_cache(0.1)
        for _ in range(10):
            m.free_master(0.1)
            m.free_cache(0.1)
        assert m.master_words == 0.0
        assert m.cache_words == 0.0
        assert m.used_words == 0.0

    @pytest.mark.parametrize("mode", ["scalar", "vector"])
    def test_drift_does_not_accumulate_across_cycles(self, mode):
        sys = PIMSystem(2, sim_mode=mode)
        m = sys.modules[1]
        for _ in range(500):
            m.alloc_master(0.3)
            m.free_master(0.1)
            m.free_master(0.2)
        assert m.master_words == 0.0

    @pytest.mark.parametrize("mode", ["scalar", "vector"])
    def test_real_negative_still_raises(self, mode):
        sys = PIMSystem(2, sim_mode=mode)
        with pytest.raises(RuntimeError):
            sys.modules[0].free_master(1.0)
        with pytest.raises(RuntimeError):
            sys.modules[0].free_cache(0.5)


# ======================================================================
# broadcast fan-out atomicity (bugfix)
# ======================================================================
class TestBroadcastAtomicity:
    def _run(self, seed: int):
        plan = FaultPlan(seed=seed, drop_rate=0.4)
        sys = PIMSystem(8, fault_plan=plan)
        err = None
        with sys.round():
            try:
                sys.broadcast(5)
            except MessageLoss as e:
                err = e
        return sys, err

    def test_partial_delivery_recorded_and_charged(self):
        # Seed chosen so the 8 drop rolls produce at least one loss and
        # at least one delivery (asserted, not assumed).
        sys, err = self._run(seed=1)
        delivered, dropped = sys.last_broadcast
        assert dropped and delivered
        assert err is not None
        assert err.delivered_mids == delivered
        assert err.dropped_mids == dropped
        assert sorted(delivered + dropped) == list(range(8))
        # Every delivered module was charged; no dropped module was.
        assert sys.stats.total.comm_words == 5 * len(delivered)
        assert sys.stats.total.module_rounds == len(delivered)

    def test_fanout_is_deterministic(self):
        a, _ = self._run(seed=3)
        b, _ = self._run(seed=3)
        assert a.last_broadcast == b.last_broadcast
        assert a.stats == b.stats

    def test_fault_free_broadcast_reaches_all_live(self):
        sys = PIMSystem(6)
        sys.decommission(4)
        with sys.round():
            sys.broadcast(3)
        delivered, dropped = sys.last_broadcast
        assert delivered == (0, 1, 2, 3, 5)
        assert dropped == ()
        assert sys.stats.total.comm_words == 3 * 5


# ======================================================================
# HotnessTracker.transfer guards (bugfix)
# ======================================================================
class TestTransferGuards:
    def _tracker(self, n=4):
        sys = PIMSystem(n)
        tr = HotnessTracker(sys, alpha=1.0)
        with sys.round():
            sys.charge_pim(0, 100)
            sys.charge_pim(1, 50)
        tr.observe()
        return sys, tr

    def test_self_transfer_is_noop(self):
        _, tr = self._tracker()
        before = tr.hotness.copy()
        tr.transfer(0, 0, 40.0)
        assert np.array_equal(tr.hotness, before)

    def test_dead_destination_is_noop(self):
        sys, tr = self._tracker()
        sys.decommission(2)
        before = tr.hotness.copy()
        tr.transfer(0, 2, 40.0)
        assert np.array_equal(tr.hotness, before)

    def test_out_of_range_raises(self):
        _, tr = self._tracker()
        with pytest.raises(ValueError):
            tr.transfer(0, 99, 1.0)
        with pytest.raises(ValueError):
            tr.transfer(-5, 1, 1.0)

    def test_migration_then_failover_composes(self):
        """A stale plan executed after the destination crashed must not
        park heat on the dead module (it would never decay back out)."""
        sys, tr = self._tracker()
        # Planner decides to move heat 0 -> 2; module 2 crashes first.
        sys.decommission(2)
        tr.transfer(0, 2, 60.0)
        assert tr.hotness[2] == 0.0
        # Heat stays where observations can still decay it.
        assert tr.hotness[0] == 100.0
        # A live re-plan still works.
        tr.transfer(0, 3, 60.0)
        assert tr.hotness[3] == 60.0 and tr.hotness[0] == 40.0
        assert np.all(tr.live_hotness() >= 0.0)


# ======================================================================
# ModuleView proxy surface (direct unit coverage)
# ======================================================================
class TestModuleViewSurface:
    """The vector-mode ``ModuleView`` writes through to shared state.

    Every ``PIMModule``-compatible attribute the proxy exposes — counter
    setters, ``failed``, per-module capacity, the pressure callback —
    must mutate the one underlying :class:`VectorState`, visible from a
    *fresh* view handle and from the arrays themselves; and the derived
    read-only properties and pressure-onset semantics must match the
    scalar module exactly.
    """

    def _view(self, n=4, mid=1, **kw):
        sys = PIMSystem(n, sim_mode="vector", **kw)
        return sys, sys.modules[mid]

    def test_counter_setters_write_through(self):
        sys, m = self._view()
        m.total_cycles = 12.0
        m.round_cycles = 5.0
        m.round_send_words = 3.0
        m.round_recv_words = 4.0
        m.master_words = 20.0
        m.cache_words = 6.0
        # A fresh handle over the same slot sees every write...
        f = sys.modules[1]
        assert f.total_cycles == 12.0 and f.round_cycles == 5.0
        assert f.round_send_words == 3.0 and f.round_recv_words == 4.0
        assert f.master_words == 20.0 and f.cache_words == 6.0
        # ...derived read-only properties recompute from the arrays...
        assert f.round_words == 7.0
        assert f.used_words == 26.0
        # ...and the neighbouring slots are untouched.
        for other in (0, 2, 3):
            o = sys.modules[other]
            assert o.total_cycles == 0.0 and o.used_words == 0.0

    def test_values_round_trip_as_python_floats(self):
        _, m = self._view()
        m.total_cycles = np.float64(8.0)
        assert type(m.total_cycles) is float
        assert type(m.round_words) is float
        assert type(m.used_words) is float

    def test_failed_setter_coerces_to_bool(self):
        sys, m = self._view()
        m.failed = 1
        assert m.failed is True
        assert sys.modules[1].failed is True
        m.failed = 0
        assert m.failed is False

    def test_capacity_is_per_module(self):
        sys, m = self._view(module_capacity_words=100)
        assert m.capacity_words == 100
        m.capacity_words = 40
        assert sys.modules[1].capacity_words == 40
        assert sys.modules[0].capacity_words == 100  # others keep theirs

    def test_over_capacity_with_and_without_limit(self):
        sys, m = self._view(module_capacity_words=None)
        m.alloc_master(1e9)
        assert not m.over_capacity()  # None = unlimited
        m.capacity_words = 10
        assert m.over_capacity()
        m.capacity_words = None
        assert not m.over_capacity()

    @pytest.mark.parametrize("alloc", ["alloc_master", "alloc_cache"])
    def test_pressure_fires_only_on_the_crossing_alloc(self, alloc):
        sys, m = self._view(module_capacity_words=10)
        fired = []
        m.pressure_cb = lambda mod: fired.append(mod.mid)
        getattr(m, alloc)(8.0)
        assert fired == []          # under capacity: silent
        getattr(m, alloc)(5.0)
        assert fired == [1]         # the crossing allocation fires once
        getattr(m, alloc)(3.0)
        assert fired == [1]         # further allocs while over: no drone
        # Dropping back under and crossing again fires a fresh onset.
        getattr(m, alloc.replace("alloc", "free"))(8.0)
        getattr(m, alloc)(4.0)
        assert fired == [1, 1]

    def test_pressure_parity_with_scalar(self):
        """The same alloc/free script fires the same onsets in both modes."""
        script = [("alloc_master", 6), ("alloc_cache", 3), ("alloc_cache", 4),
                  ("free_master", 6), ("alloc_master", 2), ("alloc_master", 9)]
        onsets = {}
        for mode in ("scalar", "vector"):
            sys = PIMSystem(2, sim_mode=mode, module_capacity_words=12)
            m = sys.modules[0]
            fired: list = []
            m.pressure_cb = lambda mod: fired.append(
                (mod.mid, mod.used_words))
            for verb, words in script:
                getattr(m, verb)(words)
            onsets[mode] = fired
        assert onsets["scalar"] == onsets["vector"]
        assert len(onsets["scalar"]) == 2  # crossed, receded, crossed again

    def test_charge_and_comm_hit_shared_arrays(self):
        sys, m = self._view()
        with sys.round():
            m.charge(9.0, phase="build")
            m.add_send(2.0, phase="build")
            m.add_recv(3.0, phase="build")
            assert sys.modules[1].round_cycles == 9.0
            assert sys.modules[1].round_words == 5.0
        assert sys.modules[1].total_cycles == 9.0


# ======================================================================
# scalar vs vector differential
# ======================================================================
VERBS = st.sampled_from(["pim", "send", "recv", "bulk_pim", "bulk_send",
                         "bulk_recv", "arr_pim", "arr_send", "arr_recv",
                         "flat"])
PHASES = st.sampled_from(["build", "query", "update", "other"])
AMOUNTS = st.integers(0, 40)  # zeros included on purpose


@st.composite
def charge_scripts(draw):
    n_rounds = draw(st.integers(1, 5))
    script = []
    for _ in range(n_rounds):
        n_ops = draw(st.integers(0, 6))
        ops = []
        for _ in range(n_ops):
            verb = draw(VERBS)
            phase = draw(PHASES)
            if verb.startswith(("bulk", "arr")):
                pairs = draw(st.lists(
                    st.tuples(st.integers(0, 3), AMOUNTS),
                    min_size=0, max_size=5))
                ops.append((verb, phase, pairs))
            else:
                ops.append((verb, phase, draw(st.integers(0, 3)),
                            draw(AMOUNTS)))
        script.append(ops)
    return script


def _apply_script(sys: PIMSystem, script) -> None:
    for round_ops in script:
        with sys.round():
            for op in round_ops:
                verb, phase = op[0], op[1]
                with sys.phase(phase):
                    if verb == "pim":
                        sys.charge_pim(op[2], op[3])
                    elif verb == "send":
                        sys.send(op[2], op[3])
                    elif verb == "recv":
                        sys.recv(op[2], op[3])
                    elif verb == "flat":
                        sys.charge_comm_flat(op[3])
                    elif verb == "bulk_pim":
                        d = {}
                        for mid, amt in op[2]:
                            d[mid] = d.get(mid, 0) + amt
                        sys.charge_pim_bulk(d)
                    elif verb == "bulk_send":
                        d = {}
                        for mid, amt in op[2]:
                            d[mid] = d.get(mid, 0) + amt
                        sys.send_bulk(d)
                    elif verb == "bulk_recv":
                        d = {}
                        for mid, amt in op[2]:
                            d[mid] = d.get(mid, 0) + amt
                        sys.recv_bulk(d)
                    elif op[2]:
                        mids = np.array([m for m, _ in op[2]], dtype=np.intp)
                        amts = np.array([a for _, a in op[2]],
                                        dtype=np.float64)
                        if verb == "arr_pim":
                            sys.charge_pim_array(mids, amts)
                        elif verb == "arr_send":
                            sys.send_array(mids, amts)
                        else:
                            sys.recv_array(mids, amts)


class TestSimModeDifferential:
    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(script=charge_scripts())
    def test_any_charging_script_is_identical(self, script):
        scalar, vector = both_systems(4)
        _apply_script(scalar, script)
        _apply_script(vector, script)
        assert_stats_identical(scalar, vector)

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(script=charge_scripts(), seed=st.integers(0, 100))
    def test_identical_under_faults(self, script, seed):
        plan_kw = dict(seed=seed, drop_rate=0.15, slow_factors={1: 3.0},
                       storm_rate=0.3, storm_factor=4.0, storm_rounds=2,
                       crash_rate=0.05, max_crashes=2)
        scalar, vector = both_systems(
            4, fault_plan=FaultPlan(**plan_kw))
        # Re-create the plan per system: each consumes its own RNG stream.
        vector._faults = FaultPlan(**plan_kw)

        def run(sys):
            try:
                _apply_script(sys, script)
            except Exception as e:  # noqa: BLE001 - faults are the point
                return type(e).__name__, str(e)
            return None

        ra, rb = run(scalar), run(vector)
        assert ra == rb
        assert_stats_identical(scalar, vector)
        assert ([e.to_dict() for e in scalar.fault_plan.events]
                == [e.to_dict() for e in vector.fault_plan.events])

    def test_straggler_tiebreak_matches(self):
        """Equal round cycles: both modes pick the lowest dirty mid."""
        scalar, vector = both_systems(4)
        for sys in (scalar, vector):
            with sys.round():
                with sys.phase("a"):
                    sys.charge_pim(2, 10)
                with sys.phase("b"):
                    sys.charge_pim(1, 10)  # tie: mid 1 wins (sorted order)
        assert_stats_identical(scalar, vector)
        assert scalar.stats.phases["b"].pim_cycles == 10
        assert "a" not in {
            ph for ph, c in scalar.stats.phases.items() if c.pim_cycles
        }

    def test_decommission_and_views(self):
        scalar, vector = both_systems(4)
        for sys in (scalar, vector):
            sys.modules[1].alloc_master(50)
            sys.modules[1].alloc_cache(20)
            sys.modules[2].alloc_master(30)
            sys.decommission(1)
        for sys in (scalar, vector):
            assert sys.modules[1].failed
            assert sys.modules[1].used_words == 0.0
            assert sys.master_words() == 30.0
            assert sys.used_words() == 30.0
            assert list(sys.residency()) == [0.0, 0.0, 30.0, 0.0]
        with pytest.raises(Exception):
            with vector.round():
                vector.charge_pim(1, 5)

    def test_module_loads_shapes(self):
        scalar, vector = both_systems(3)
        for sys in (scalar, vector):
            with sys.round():
                sys.charge_pim_array(np.array([0, 2]), np.array([7.0, 9.0]))
        assert np.array_equal(scalar.module_loads(), vector.module_loads())
        # module_loads returns a copy, not a live view of the core.
        loads = vector.module_loads()
        loads[0] = 999.0
        assert vector.module_loads()[0] == 7.0

    def test_traced_runs_agree(self):
        """With a tracer attached the vector core books through the exact
        per-element path; stats must stay identical and rounds reconcile."""
        from repro.obs import TraceCollector

        ta, tb = TraceCollector(), TraceCollector()
        scalar = PIMSystem(4, sim_mode="scalar", tracer=ta)
        vector = PIMSystem(4, sim_mode="vector", tracer=tb)
        script = [[("pim", "q", 0, 5), ("send", "q", 1, 3),
                   ("recv", "u", 0, 2)],
                  [("bulk_pim", "q", [(0, 4), (3, 9)])]]
        _apply_script(scalar, script)
        _apply_script(vector, script)
        assert_stats_identical(scalar, vector)
        ra = ta.rounds()
        rb = tb.rounds()
        assert len(ra) == len(rb) == 2
        for x, y in zip(ra, rb):
            assert x.cycles_by_module == y.cycles_by_module
            assert x.words_by_module == y.words_by_module
            assert x.straggler_mid == y.straggler_mid

    def test_invalid_sim_mode_rejected(self):
        with pytest.raises(ValueError):
            PIMSystem(2, sim_mode="simd")
