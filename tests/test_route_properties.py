"""Property-based tests (hypothesis) for membership-filter routing.

The routing contract, quantified over dimensionality, duplicate-heavy
key grids and Varden extreme skew: a filters-enabled run returns
**byte-identical answers** to a filters-off twin, while its interconnect
books (communicated words, per-round participant maxima, rounds, PIM
cycles) are never larger — filters can only remove provably-empty sends,
and a false positive costs exactly what the unfiltered send costs.  The
same must hold through a crash-restart cycle (the filters rebuild from
the recovered residency) and across both execution modes.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PIMZdTree
from repro.core.config import skew_resistant
from repro.pim import PIMSystem
from repro.route import RouteFilterSet
from repro.store import DurableStore, open_backend, recover
from repro.workloads import uniform_points, varden_points

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
N_MODULES = 4
# Counters a filter may only shrink.  cpu_ops/dram_words are excluded by
# design: probes and rebuilds are host work and are charged there.
SHRINK_ONLY = ("comm_words", "comm_max_words", "rounds", "pim_cycles")


def _points(kind: str, n: int, dims: int, seed: int) -> np.ndarray:
    if kind == "varden":
        return varden_points(n, dims, seed=seed)
    if kind == "duplicates":
        rng = np.random.default_rng(seed)
        return rng.integers(0, 3, size=(n, dims)).astype(np.float64) / 4.0
    return uniform_points(n, dims, seed=seed)


def _make(pts, exec_mode, *, fpr=None):
    cfg = skew_resistant(N_MODULES).with_overrides(exec_mode=exec_mode)
    tree = PIMZdTree(pts, config=cfg, system=PIMSystem(N_MODULES, seed=0))
    if fpr is not None:
        RouteFilterSet(tree, fpr=fpr)
    return tree


def _lookup_answers(tree, queries):
    """Canonical point-lookup answer: (key, present) per query."""
    out = []
    for r in tree.search(queries):
        present = False
        if r.leaf is not None and r.leaf.keys is not None:
            key = np.uint64(r.key)
            j = int(np.searchsorted(r.leaf.keys, key))
            present = j < len(r.leaf.keys) and bool(r.leaf.keys[j] == key)
        out.append((r.key, present))
    return out


def _run_workload(tree, pts, queries, k, *, deletes=True):
    """Lookups, kNN, and a delete of half-present rows; returns answers.

    ``deletes=False`` for the duplicate-key grid: one row there matches
    (and removes) every colliding copy, and emptying the tree is
    rejected mid-batch.
    """
    lookups = _lookup_answers(tree, queries)
    knn = tree.knn(queries, k)
    removed = 0
    if deletes:
        removed = tree.delete(
            np.vstack([pts[: max(1, len(pts) // 8)], queries]))
    return lookups, knn, removed


def _assert_same_answers(a, b):
    (l0, k0, d0), (l1, k1, d1) = a, b
    assert l0 == l1
    assert d0 == d1
    for (da, pa), (db, pb) in zip(k0, k1):
        assert np.array_equal(da, db)
        assert np.array_equal(pa, pb)


@SETTINGS
@given(
    dims=st.integers(1, 4),
    kind=st.sampled_from(["uniform", "varden", "duplicates"]),
    n=st.integers(64, 400),
    seed=st.integers(0, 2**16),
    exec_mode=st.sampled_from(["reference", "vectorized"]),
    fpr=st.sampled_from([0.001, 0.01, 0.1]),
)
def test_filters_identical_answers_never_more_traffic(
        dims, kind, n, seed, exec_mode, fpr):
    pts = _points(kind, n, dims, seed)
    queries = np.vstack([pts[: min(8, n)],
                         _points(kind, 8, dims, seed + 1)])
    k = min(3, n)
    t0 = _make(pts, exec_mode)
    t1 = _make(pts, exec_mode, fpr=fpr)
    base0 = t0.system.stats.to_dict()["total"]
    base1 = t1.system.stats.to_dict()["total"]
    deletes = kind != "duplicates"
    a0 = _run_workload(t0, pts, queries, k, deletes=deletes)
    a1 = _run_workload(t1, pts, queries, k, deletes=deletes)
    _assert_same_answers(a0, a1)
    tot0 = t0.system.stats.to_dict()["total"]
    tot1 = t1.system.stats.to_dict()["total"]
    for name in SHRINK_ONLY:
        spent0 = tot0[name] - base0[name]
        spent1 = tot1[name] - base1[name]
        assert spent1 <= spent0, (name, spent1, spent0)


@SETTINGS
@given(
    kind=st.sampled_from(["uniform", "varden", "duplicates"]),
    n=st.integers(64, 300),
    seed=st.integers(0, 2**16),
)
def test_filters_on_exec_modes_agree(kind, n, seed):
    """Reference vs vectorized differential with pruning active: the
    executor frontier is the single choke point, so both modes must make
    identical pruning decisions and return identical answers."""
    pts = _points(kind, n, 3, seed)
    queries = np.vstack([pts[: min(8, n)], _points(kind, 8, 3, seed + 1)])
    k = min(3, n)
    tr = _make(pts, "reference", fpr=0.01)
    tv = _make(pts, "vectorized", fpr=0.01)
    deletes = kind != "duplicates"
    ar = _run_workload(tr, pts, queries, k, deletes=deletes)
    av = _run_workload(tv, pts, queries, k, deletes=deletes)
    _assert_same_answers(ar, av)
    fr, fv = tr.route_filters, tv.route_filters
    assert fr.queries_pruned == fv.queries_pruned
    assert fr.words_saved == fv.words_saved
    assert fr.fp_probes == fv.fp_probes


@SETTINGS
@given(
    dims=st.integers(1, 3),
    kind=st.sampled_from(["uniform", "varden"]),
    n=st.integers(64, 250),
    seed=st.integers(0, 2**16),
)
def test_filters_survive_crash_restart(dims, kind, n, seed):
    """After a checkpoint + committed updates + recovery, the rebuilt
    filters match the never-crashed oracle's bit-for-bit and the
    recovered index answers (still pruned) byte-identically."""
    pts = _points(kind, n, dims, seed)
    tree = PIMZdTree(pts, system=PIMSystem(N_MODULES, seed=3))
    RouteFilterSet(tree, fpr=0.01, seed=5)
    with tempfile.TemporaryDirectory() as tmp:
        store = DurableStore(open_backend("file", Path(tmp) / "s"))
        store.attach(tree)
        tree.insert(_points(kind, 20, dims, seed + 7))
        tree.delete(pts[: max(1, n // 10)])
        res = recover(store.backend, cost_model=tree.cost_model)
        store.backend.close()

    rf0, rf1 = tree.route_filters, res.tree.route_filters
    assert rf1 is not None and rf1.enabled
    assert np.array_equal(rf0._global.words, rf1._global.words)
    assert sorted(rf0._filters) == sorted(rf1._filters)
    for mid in rf0._filters:
        assert np.array_equal(rf0._filters[mid].words,
                              rf1._filters[mid].words), mid
    assert rf0._meta_info == rf1._meta_info

    queries = np.vstack([pts[: min(8, n)], _points(kind, 8, dims, seed + 2)])
    assert _lookup_answers(tree, queries) == _lookup_answers(res.tree, queries)
    k = min(3, res.tree.root.count)
    for (d0, p0), (d1, p1) in zip(tree.knn(queries, k),
                                  res.tree.knn(queries, k)):
        assert np.array_equal(d0, d1)
        assert np.array_equal(p0, p1)
