"""Tests for push-pull search (§3.3) and its load-balancing behaviour."""

import numpy as np
import pytest

from repro.core import PIMZdTree, skew_resistant, throughput_optimized
from repro.pim import PIMSystem


def make_tree(points, variant="skew", n_modules=8, seed=1, **cfg_over):
    system = PIMSystem(n_modules, seed=seed)
    if variant == "throughput":
        cfg = throughput_optimized(len(points), n_modules, **cfg_over)
    else:
        cfg = skew_resistant(n_modules, **cfg_over)
    return PIMZdTree(points, config=cfg, system=system)


class TestPullDecisions:
    def test_uniform_batch_mostly_pushes(self, rng):
        pts = rng.random((4000, 3))
        tree = make_tree(pts, "skew")
        tree.search(rng.random((512, 3)))
        ex = tree.last_executor
        assert ex is not None
        assert ex.pushed_tasks > 0
        # Uniform batches spread thin: pulls are the exception.
        assert ex.pulled_tasks <= ex.pushed_tasks

    def test_adversarial_hotspot_triggers_pulls(self, rng):
        """Every query hitting one point must pull the hot meta-nodes."""
        pts = rng.random((4000, 3))
        tree = make_tree(pts, "skew")
        hot = np.tile(pts[17], (512, 1))
        tree.search(hot)
        ex = tree.last_executor
        assert ex.pulled_metas > 0

    def test_push_pull_disabled_never_pulls(self, rng):
        pts = rng.random((4000, 3))
        tree = make_tree(pts, "skew", push_pull=False)
        hot = np.tile(pts[17], (512, 1))
        tree.search(hot)
        assert tree.last_executor.pulled_metas == 0

    def test_pull_reduces_straggler_load(self, rng):
        """With push-pull, an adversarial batch loads modules less unevenly
        than with pushing only."""
        pts = rng.random((4000, 3))
        hot = np.tile(pts[3], (600, 1))

        def max_load(push_pull: bool) -> float:
            tree = make_tree(pts, "skew", push_pull=push_pull, seed=5)
            snap = tree.system.module_loads().copy()
            tree.search(hot)
            loads = tree.system.module_loads() - snap
            return loads.max()

        assert max_load(True) < max_load(False)


class TestRounds:
    def test_search_rounds_bounded(self, rng):
        """Worst-case O(log_B θ_L0) communication rounds (Theorem 5.3)."""
        import math

        pts = rng.random((6000, 3))
        tree = make_tree(pts, "skew")
        cfg = tree.config
        snap = tree.system.snapshot()
        tree.search(rng.random((256, 3)))
        rounds = tree.system.stats.diff(snap).total.rounds
        bound = 3 * math.log(cfg.theta_l0, max(2, cfg.chunk_factor)) + 4
        assert rounds <= bound, (rounds, bound)

    def test_throughput_config_single_round_search(self, rng):
        """Range-partitioned layout: one push round end-to-end."""
        pts = rng.random((6000, 3))
        tree = make_tree(pts, "throughput")
        snap = tree.system.snapshot()
        tree.search(rng.random((256, 3)))
        assert tree.system.stats.diff(snap).total.rounds <= 2

    def test_empty_batch_runs_no_rounds(self, rng):
        pts = rng.random((1000, 3))
        tree = make_tree(pts, "throughput")
        snap = tree.system.snapshot()
        tree.search(np.empty((0, 3)))
        assert tree.system.stats.diff(snap).total.rounds == 0


class TestCommunication:
    def test_search_comm_constant_in_n_for_throughput_config(self, rng):
        """Theorem/Table 2: O(1) words per SEARCH, independent of n."""
        comm_per_op = []
        for n in (4000, 16000):
            pts = rng.random((n, 3))
            tree = make_tree(pts, "throughput", n_modules=8)
            q = rng.random((500, 3))
            snap = tree.system.snapshot()
            tree.search(q)
            d = tree.system.stats.diff(snap).total
            comm_per_op.append(d.comm_words / 500)
        assert comm_per_op[1] <= comm_per_op[0] * 1.5 + 2

    def test_pull_fetches_master_words(self, rng):
        pts = rng.random((4000, 3))
        tree = make_tree(pts, "skew")
        hot = np.tile(pts[0], (600, 1))
        snap = tree.system.snapshot()
        tree.search(hot)
        d = tree.system.stats.diff(snap).total
        # Pulled meta masters travel once, not once per query.
        assert d.comm_words < 600 * 40


class TestPullImbalanceTrigger:
    """Alg. 1 step 2: the ``pull_imbalance_factor`` path under Varden skew."""

    def _varden_hot_run(self, factor, seed=5):
        from repro.workloads import varden_points

        pts = varden_points(6000, 3, seed=seed)
        tree = make_tree(pts, "skew", n_modules=8, seed=seed,
                         pull_imbalance_factor=factor)
        # Strike the single densest point: one module's L1 meta-nodes draw
        # essentially the whole batch, the definition of a straggler.
        hot = np.tile(pts[0], (600, 1))
        base = tree.system.module_loads().copy()
        tree.search(hot)
        loads = tree.system.module_loads() - base
        return tree.last_executor, loads

    def test_imbalance_factor_path_fires_under_varden_skew(self):
        ex, _ = self._varden_hot_run(factor=1.0)
        assert ex.pulled_metas > 0
        assert ex.pulled_tasks > 0

    def test_counters_reconcile(self):
        """Every task is routed exactly one way; nothing is double-counted."""
        ex, _ = self._varden_hot_run(factor=1.0)
        assert ex.pushed_tasks + ex.pulled_tasks >= 600  # roots at minimum
        assert ex.rounds_executed > 0
        assert ex.pulled_metas <= ex.pulled_tasks  # >=1 task per pulled meta

    def test_disabling_the_factor_disables_l1_pulls(self):
        aggressive, _ = self._varden_hot_run(factor=1.0)
        never, _ = self._varden_hot_run(factor=float("inf"))
        assert never.pulled_tasks < aggressive.pulled_tasks

    def test_pulls_cap_the_varden_straggler(self):
        _, with_pulls = self._varden_hot_run(factor=1.0)
        _, without = self._varden_hot_run(factor=float("inf"))
        assert with_pulls.max() <= without.max()


class TestLoadBalance:
    def test_uniform_batch_balanced_whp(self, rng):
        """Lemma 5.2 behaviour: random placement balances uniform load."""
        pts = rng.random((16000, 3))
        tree = make_tree(pts, "throughput", n_modules=16, seed=3)
        base = tree.system.module_loads().copy()
        tree.search(rng.random((4000, 3)))
        loads = tree.system.module_loads() - base
        assert loads.max() <= 4.0 * max(loads.mean(), 1e-9)

    def test_skew_resistant_beats_throughput_under_skew(self, rng):
        """Fig. 9 mechanism: the skew-resistant layout caps the straggler."""
        pts = rng.random((8000, 3))
        hot = np.tile(pts[5], (1000, 1)) + rng.normal(scale=1e-5, size=(1000, 3))

        def straggler(variant):
            tree = make_tree(pts, variant, n_modules=16, seed=2)
            base = tree.system.module_loads().copy()
            tree.search(hot)
            loads = tree.system.module_loads() - base
            return loads.max()

        assert straggler("skew") <= straggler("throughput")
