"""kNN entry-point edge cases: empty batches, k > n, duplicate queries.

Regression suite for the Alg. 3 entry points.  The empty-batch case used
to raise (``np.atleast_2d`` turned a bare ``[]`` into one bogus 0-D query
that tripped the Morton codec); the other cases lock in behavior the
pipeline must keep: ``k`` larger than the resident point count returns
every resident point (well-shaped, sorted), and duplicate query points
return identical answers.
"""

import numpy as np
import pytest
from conftest import brute_knn, sorted_rows

from repro.core.config import skew_resistant, throughput_optimized
from repro.core.tree import PIMZdTree
from repro.pim.model import PIMSystem


def make_tree(pts, *, n_modules=4, exec_mode=None):
    cfg = skew_resistant(n_modules)
    if exec_mode is not None:
        cfg = cfg.with_overrides(exec_mode=exec_mode)
    dims = pts.shape[1]
    return PIMZdTree(
        pts,
        config=cfg,
        system=PIMSystem(n_modules, seed=0),
        bounds=(np.zeros(dims), np.ones(dims)),
    )


@pytest.fixture
def pts(rng):
    return rng.random((50, 3))


class TestEmptyBatch:
    @pytest.mark.parametrize(
        "empty", [np.empty((0, 3)), np.array([]), []],
        ids=["0x3", "flat", "list"],
    )
    def test_empty_batch_returns_empty_list(self, pts, empty):
        tree = make_tree(pts)
        assert tree.knn(empty, 3) == []

    def test_empty_batch_charges_nothing(self, pts):
        tree = make_tree(pts)
        before = tree.system.stats.to_dict()
        tree.knn(np.array([]), 3)
        assert tree.system.stats.to_dict() == before

    def test_k_below_one_still_raises(self, pts):
        tree = make_tree(pts)
        with pytest.raises(ValueError):
            tree.knn(pts[:2], 0)


class TestKLargerThanResident:
    @pytest.mark.parametrize("exec_mode", ["reference", "vectorized"])
    def test_returns_all_resident_points(self, pts, exec_mode):
        tree = make_tree(pts, exec_mode=exec_mode)
        n = len(pts)
        for ans_d, ans_p in tree.knn(pts[:3], n + 17):
            assert ans_d.shape == (n,)
            assert ans_p.shape == (n, 3)
            assert np.all(np.diff(ans_d) >= 0)
            assert np.array_equal(sorted_rows(ans_p), sorted_rows(pts))

    def test_tiny_tree(self, rng):
        small = rng.random((3, 2))
        tree = make_tree(small)
        (ans_d, ans_p), = tree.knn(small[:1], 10)
        assert ans_p.shape == (3, 2)
        assert ans_d[0] == 0.0

    def test_throughput_variant(self, rng):
        pts = rng.random((200, 3))
        tree = PIMZdTree(
            pts,
            config=throughput_optimized(len(pts), 8),
            system=PIMSystem(8, seed=0),
            bounds=(np.zeros(3), np.ones(3)),
        )
        (ans_d, ans_p), = tree.knn(pts[:1], len(pts) + 1)
        assert ans_p.shape == (len(pts), 3)


class TestDuplicateQueries:
    @pytest.mark.parametrize("exec_mode", ["reference", "vectorized"])
    def test_duplicates_get_identical_answers(self, pts, exec_mode):
        tree = make_tree(pts, exec_mode=exec_mode)
        q = np.vstack([pts[7], pts[7], pts[7], pts[11], pts[7]])
        answers = tree.knn(q, 5)
        assert len(answers) == 5
        base_d, base_p = answers[0]
        for i in (1, 2, 4):
            assert np.array_equal(answers[i][0], base_d)
            assert np.array_equal(answers[i][1], base_p)
        # The duplicated query point is its own nearest neighbour.
        assert base_d[0] == 0.0

    def test_duplicate_resident_points(self, rng):
        # Many copies of the same point in the tree: answers stay k-shaped.
        pts = np.vstack([np.full((20, 3), 0.5), rng.random((30, 3))])
        tree = make_tree(pts)
        (ans_d, ans_p), = tree.knn(np.full((1, 3), 0.5), 10)
        assert ans_d.shape == (10,)
        assert np.all(ans_d[:20 if len(ans_d) >= 20 else len(ans_d)] >= 0)
        assert np.count_nonzero(ans_d == 0.0) == 10


class TestSingleQueryShapes:
    def test_one_dim_query_gives_one_answer(self, pts):
        tree = make_tree(pts)
        answers = tree.knn(pts[0], 4)
        assert len(answers) == 1
        d, p = answers[0]
        np.testing.assert_allclose(d, brute_knn(pts, pts[0], 4), atol=1e-12)
