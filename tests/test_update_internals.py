"""White-box tests of the batch-update machinery (Alg. 2 internals)."""

import numpy as np
import pytest

from repro.core import PIMZdTree, skew_resistant, throughput_optimized
from repro.core.node import Layer
from repro.pim import PIMSystem

from conftest import assert_same_points


def make_tree(points, variant="skew", n_modules=4, seed=1, **cfg_over):
    system = PIMSystem(n_modules, seed=seed)
    if variant == "throughput":
        cfg = throughput_optimized(len(points), n_modules, **cfg_over)
    else:
        cfg = skew_resistant(n_modules, **cfg_over)
    return PIMZdTree(points, config=cfg, system=system,
                     bounds=(np.zeros(points.shape[1]), np.ones(points.shape[1])))


class TestEdgeSplitChains:
    def test_single_edge_split(self):
        """A key diverging inside a compressed edge creates exactly one LCA."""
        cluster = np.full((40, 2), 0.9) + np.linspace(0, 0.001, 40).reshape(-1, 1)
        tree = make_tree(cluster)
        nodes_before = tree.num_nodes()
        tree.insert(np.array([[0.1, 0.1]]))
        tree.check_invariants()
        # One new leaf + one new internal (LCA).
        assert tree.num_nodes() == nodes_before + 2

    def test_multi_depth_divergence_chain(self):
        """Keys diverging at several depths of one edge chain correctly."""
        cluster = np.full((30, 2), 0.999)
        tree = make_tree(cluster)
        diverging = np.array([[0.01, 0.01], [0.3, 0.3], [0.6, 0.6], [0.9, 0.2]])
        tree.insert(diverging)
        tree.check_invariants()
        assert_same_points(tree.all_points(), np.vstack([cluster, diverging]))

    def test_divergence_above_root(self, rng):
        """A key outside the root's compressed range creates a new root."""
        # Distinct keys in a tiny ball: the root is an internal node with a
        # long compressed prefix (depth > 0).
        cluster = 0.75 + rng.random((40, 2)) * 1e-4
        tree = make_tree(cluster, leaf_size=8)
        old_root = tree.root
        assert old_root.depth > 0  # compressed root prefix
        tree.insert(np.array([[0.01, 0.99]]))
        tree.check_invariants()
        assert tree.root is not old_root
        assert tree.root.depth < old_root.depth

    def test_same_edge_multiple_keys_deduplicated(self):
        """Alg. 2 step 2d: several keys splitting one edge build one chain,
        not one chain per key."""
        cluster = np.full((30, 2), 0.9)
        tree = make_tree(cluster)
        nodes_before = tree.num_nodes()
        # Two identical diverging keys: one new leaf (holding both) + 1 LCA.
        tree.insert(np.array([[0.2, 0.2], [0.2, 0.2]]))
        tree.check_invariants()
        assert tree.num_nodes() == nodes_before + 2


class TestLeafLifecycle:
    def test_leaf_split_replaces_leaf(self, rng):
        pts = rng.random((16, 2)) * 0.01  # one leaf's worth
        tree = make_tree(pts, leaf_size=16)
        assert tree.root.is_leaf or tree.num_nodes() <= 3
        tree.insert(rng.random((64, 2)))
        tree.check_invariants()
        assert tree.size == 80

    def test_leaf_merge_in_place_keeps_node(self, rng):
        pts = rng.random((200, 2))
        tree = make_tree(pts, leaf_size=16)
        res = tree.search(pts[:1])[0]
        leaf = res.leaf
        if leaf.count < tree.config.leaf_size:
            nid = leaf.nid
            # Insert a duplicate of an existing key: fits in place.
            tree.insert(pts[:1])
            res2 = tree.search(pts[:1])[0]
            assert res2.leaf.nid == nid

    def test_emptied_leaf_spliced(self, rng):
        pts = np.vstack([np.full((5, 2), 0.25), rng.random((200, 2))])
        tree = make_tree(pts, leaf_size=4)
        nodes_before = tree.num_nodes()
        tree.delete(np.full((1, 2), 0.25))
        tree.check_invariants()
        assert tree.num_nodes() < nodes_before  # leaf + parent gone

    def test_counts_exact_after_everything(self, rng):
        pts = rng.random((1000, 2))
        tree = make_tree(pts)
        tree.insert(rng.random((300, 2)))
        tree.delete(pts[:400])

        def check(node):
            if node.is_leaf:
                assert node.count == len(node.keys)
                return node.count
            total = check(node.left) + check(node.right)
            assert node.count == total
            return total

        check(tree.root)


class TestPromotionMechanics:
    def test_promotion_clears_meta(self, rng):
        pts = rng.random((2000, 3))
        tree = make_tree(pts, "skew", n_modules=4)
        # Grow one region until some node crosses θ_L0.
        hot = rng.random((4000, 3)) * 0.1
        for i in range(0, 4000, 500):
            tree.insert(hot[i : i + 500])
        tree.check_invariants()
        for node in tree.l0_nodes():
            assert node.meta is None

    def test_promotion_charges_broadcast_when_replicated(self, rng):
        pts = rng.random((3000, 3))
        system = PIMSystem(8, seed=1, llc_bytes=2048)  # forces replicated L0
        tree = PIMZdTree(pts, config=skew_resistant(8), system=system)
        assert not tree.l0_on_cpu
        before = system.stats.total.comm_words
        hot = rng.random((3000, 3)) * 0.05
        for i in range(0, 3000, 500):
            tree.insert(hot[i : i + 500])
        tree.check_invariants()
        assert system.stats.total.comm_words > before

    def test_rounds_bounded_per_batch(self, rng):
        """Alg. 2: a constant number of rounds beyond the search rounds."""
        pts = rng.random((8000, 3))
        tree = make_tree(pts, "throughput", n_modules=8)
        import math

        cfg = tree.config
        for i in range(4):
            snap = tree.system.snapshot()
            tree.insert(rng.random((400, 3)))
            rounds = tree.system.stats.diff(snap).total.rounds
            bound = 3 * math.log(cfg.theta_l0, max(2, cfg.chunk_factor)) + 10
            assert rounds <= bound


class TestBatchEdgeCases:
    def test_batch_with_all_duplicates_of_one_point(self, rng):
        pts = rng.random((500, 2))
        tree = make_tree(pts)
        dup = np.tile(pts[0], (100, 1))
        tree.insert(dup)
        tree.check_invariants()
        assert tree.size == 600

    def test_batch_mixing_inserts_into_same_leaf_and_edges(self, rng):
        cluster = np.full((30, 2), 0.9)
        spread = rng.random((30, 2))
        tree = make_tree(np.vstack([cluster, spread]))
        batch = np.vstack([np.full((5, 2), 0.9), rng.random((20, 2))])
        tree.insert(batch)
        tree.check_invariants()
        assert tree.size == 85

    def test_alternating_insert_delete_same_points(self, rng):
        pts = rng.random((800, 2))
        extra = rng.random((200, 2))
        tree = make_tree(pts)
        for _ in range(3):
            tree.insert(extra)
            assert tree.delete(extra) == 200
            tree.check_invariants()
        assert_same_points(tree.all_points(), pts)
