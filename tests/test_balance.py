"""Tests for the skew-aware online rebalancing subsystem (repro.balance).

Covers the four layers end to end: hotness tracking (EWMA + imbalance
signal), migration planning (determinism, budgets, capacity-mandated
drains, convergence), the charged executor (phase attribution, routing
overrides, failover composition) and the serve-loop integration — plus
the inert-config guarantee that attaching a do-nothing rebalancer keeps
every simulator counter byte-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.balance import (
    BalanceConfig,
    HotnessTracker,
    MigrationPlanner,
    OnlineRebalancer,
    choose_destination,
    execute_plan,
    inert_balance,
)
from repro.core import PIMZdTree, throughput_optimized
from repro.eval.harness import PIMZdTreeAdapter
from repro.eval.skewbench import (
    boxes_under_metas,
    hottest_colocated_metas,
    queries_under_metas,
)
from repro.obs import TraceCollector
from repro.pim import PIMSystem
from repro.workloads import varden_points

N = 8_000
P = 16
SEED = 7


def make_adapter(*, tracer=None, capacity=None, seed=SEED):
    data = varden_points(N, 3, seed=seed)
    return PIMZdTreeAdapter(data, n_modules=P, seed=seed, tracer=tracer)


def hot_boxes(tree, nb=128, seed=SEED + 1):
    _, metas = hottest_colocated_metas(tree)
    return boxes_under_metas(tree, metas, nb, seed=seed)


# ----------------------------------------------------------------------
# HotnessTracker
# ----------------------------------------------------------------------
class TestHotnessTracker:
    def test_ewma_folds_deltas(self):
        sys = PIMSystem(4, seed=0)
        tr = HotnessTracker(sys, alpha=0.5)
        sys.modules[1].total_cycles = 100.0
        d = tr.observe()
        assert d[1] == 100.0 and d[0] == 0.0
        assert tr.hotness[1] == pytest.approx(50.0)  # 0.5 * 100
        sys.modules[1].total_cycles = 100.0  # no new work
        tr.observe()
        assert tr.hotness[1] == pytest.approx(25.0)  # decays
        assert tr.observations == 2
        assert tr.total_delta == pytest.approx(100.0)

    def test_observe_charges_nothing(self):
        sys = PIMSystem(4, seed=0)
        before = sys.stats.snapshot()
        HotnessTracker(sys).observe()
        assert sys.stats.snapshot().diff(before).total.to_dict() == \
            before.diff(before).total.to_dict()

    def test_transfer_clamped_and_conservative(self):
        sys = PIMSystem(4, seed=0)
        tr = HotnessTracker(sys)
        tr.hotness[:] = [10.0, 0.0, 0.0, 0.0]
        tr.transfer(0, 2, 25.0)  # clamped to available heat
        assert tr.hotness[0] == 0.0 and tr.hotness[2] == 10.0
        assert tr.hotness.sum() == pytest.approx(10.0)

    def test_live_hotness_masks_dead_modules(self):
        sys = PIMSystem(4, seed=0)
        tr = HotnessTracker(sys)
        tr.hotness[:] = [1.0, 99.0, 1.0, 1.0]
        sys.decommission(1)
        assert len(tr.live_hotness()) == 3
        assert tr.imbalance()["max"] == 1.0

    def test_imbalance_uses_shared_summary_keys(self):
        sys = PIMSystem(4, seed=0)
        imb = HotnessTracker(sys).imbalance()
        assert set(imb) >= {"max_mean_ratio", "gini", "max", "mean", "total"}

    def test_rebase_survives_crash_restart(self):
        """Regression: ``module_loads()`` is cumulative per *system*, so
        after a crash restart swaps in a freshly built PIMSystem, a
        tracker still holding the old baseline folds a huge negative
        delta — driving heat negative, disabling the detector and
        corrupting victim selection.  ``rebase`` re-anchors the baseline
        without folding a delta and keeps the accumulated EWMA skew."""
        old = PIMSystem(4, seed=0)
        tr = HotnessTracker(old, alpha=0.5)
        old.modules[2].total_cycles = 1000.0
        tr.observe()
        assert tr.hotness[2] == pytest.approx(500.0)
        fresh = PIMSystem(4, seed=0)  # restart: counters back to zero
        tr.rebase(fresh)
        assert tr.system is fresh
        d = tr.observe()  # no work since the restart: delta 0, not -1000
        assert np.all(d == 0.0)
        assert np.all(tr.hotness >= 0.0)
        assert tr.hotness[2] == pytest.approx(250.0)  # skew survives

    def test_rebase_validates_module_count(self):
        tr = HotnessTracker(PIMSystem(4, seed=0))
        with pytest.raises(ValueError):
            tr.rebase(PIMSystem(8, seed=0))

    def test_rebalancer_rebind_swaps_tree_and_rebases(self):
        ad1 = make_adapter()
        reb = OnlineRebalancer(ad1.tree)
        ad1.knn(varden_points(64, 3, seed=1), 5)
        reb.tracker.observe()
        ad2 = make_adapter(seed=SEED + 1)  # the restarted machine
        reb.rebind(ad2.tree)
        assert reb.tree is ad2.tree
        assert reb.planner.tree is ad2.tree
        assert reb.tracker.system is ad2.system
        # The very next observation sees only post-restart work.
        assert np.all(reb.tracker.observe() == 0.0)
        assert np.all(reb.tracker.hotness >= 0.0)

    def test_alpha_validation(self):
        sys = PIMSystem(2, seed=0)
        with pytest.raises(ValueError):
            HotnessTracker(sys, alpha=0.0)
        with pytest.raises(ValueError):
            HotnessTracker(sys, alpha=1.5)


# ----------------------------------------------------------------------
# Inert-config byte identity
# ----------------------------------------------------------------------
class TestInertByteIdentity:
    def test_inert_rebalancer_leaves_counters_byte_identical(self):
        def run(with_rebalancer: bool):
            ad = make_adapter()
            boxes = hot_boxes(ad.tree)
            reb = (OnlineRebalancer(ad.tree, inert_balance())
                   if with_rebalancer else None)
            for s in range(4):
                ad.box_count([boxes[(j + s * 32) % len(boxes)]
                              for j in range(32)])
                if reb is not None:
                    assert reb.step() is None
            return ad

        a = run(False)
        b = run(True)
        assert a.system.stats.to_dict() == b.system.stats.to_dict()
        assert b.system.n_placement_overrides == 0
        assert "rebalance" not in b.system.stats.phases

    def test_inert_config_thresholds_never_trip(self):
        cfg = inert_balance()
        assert cfg.ratio_threshold == float("inf")
        assert cfg.gini_threshold == float("inf")
        assert cfg.min_observed_cycles == float("inf")


# ----------------------------------------------------------------------
# MigrationPlanner
# ----------------------------------------------------------------------
class TestPlanner:
    def _hot_tracker(self, ad, boxes, reps=2):
        tr = HotnessTracker(ad.system)
        tr.observe()  # swallow construction work
        for s in range(reps):
            ad.box_count([boxes[(j + s * 32) % len(boxes)]
                          for j in range(32)])
        tr.observe()
        return tr

    def test_plan_is_deterministic(self):
        ad = make_adapter()
        boxes = hot_boxes(ad.tree)
        tr = self._hot_tracker(ad, boxes)
        planner = MigrationPlanner(ad.tree, BalanceConfig(seed=SEED))
        assert planner.should_rebalance(tr)
        p1 = planner.plan(tr)
        p2 = planner.plan(tr)
        assert p1.moves and p1.to_dict() == p2.to_dict()

    def test_cold_start_never_migrates(self):
        ad = make_adapter()
        tr = HotnessTracker(ad.system)
        planner = MigrationPlanner(ad.tree, BalanceConfig())
        tr.observe()  # construction work only, then nothing
        tr.hotness[:] = 0.0
        tr.hotness[0] = 10.0  # skewed but tiny: under min_observed_cycles
        assert not planner.should_rebalance(tr)

    def test_balanced_heat_plans_nothing(self):
        ad = make_adapter()
        tr = HotnessTracker(ad.system)
        tr.hotness[:] = 1e6  # perfectly flat
        planner = MigrationPlanner(ad.tree, BalanceConfig())
        assert not planner.should_rebalance(tr)
        assert planner.plan(tr).moves == []

    def test_moves_respect_budget_and_keep_hottest(self):
        ad = make_adapter()
        boxes = hot_boxes(ad.tree)
        tr = self._hot_tracker(ad, boxes)
        cfg = BalanceConfig(max_moves=2, seed=SEED)
        plan = MigrationPlanner(ad.tree, cfg).plan(tr)
        assert 0 < len(plan.moves) <= 2
        hot_mid, hot_metas = hottest_colocated_metas(ad.tree)
        moved_nids = {mv.meta.root.nid for mv in plan.moves}
        # min_keep pins the hottest resident chunk on the straggler.
        kept = max((m for m in ad.tree.metas if m.module == hot_mid),
                   key=lambda m: m.hot_hits)
        assert kept.root.nid not in moved_nids
        for mv in plan.moves:
            assert mv.dst not in ad.system.dead_modules
            assert mv.src != mv.dst

    def test_rebalancer_converges_and_stops(self):
        """After migration repairs the skew, later steps plan nothing."""
        ad = make_adapter()
        boxes = hot_boxes(ad.tree)
        reb = OnlineRebalancer(ad.tree, BalanceConfig(seed=SEED))
        migrated_steps = []
        for s in range(8):
            ad.box_count([boxes[(j + s * 32) % len(boxes)]
                          for j in range(32)])
            if reb.step() is not None:
                migrated_steps.append(s)
        assert migrated_steps, "the adversarial workload must trip migration"
        # Convergence: the trailing steps are quiet.
        assert migrated_steps[-1] < 4, (
            f"rebalancer still migrating late: {migrated_steps}")


# ----------------------------------------------------------------------
# Capacity pressure (satellite: over_capacity wired up)
# ----------------------------------------------------------------------
class TestCapacityPressure:
    def test_crossing_alloc_fires_one_event(self):
        tracer = TraceCollector()
        sys = PIMSystem(4, module_capacity_words=100, seed=0, tracer=tracer)
        m = sys.modules[2]
        m.alloc_master(90.0)
        assert tracer.capacity_events == []
        m.alloc_master(20.0)  # crossing allocation
        assert len(tracer.capacity_events) == 1
        ev = tracer.capacity_events[0]
        assert ev["mid"] == 2 and ev["used_words"] == 110.0
        m.alloc_master(5.0)  # already over: no steady drone
        assert len(tracer.capacity_events) == 1
        assert sys.over_capacity_modules() == [2]

    def test_over_capacity_module_is_mandatory_source(self):
        ad = make_adapter()
        sys = ad.system
        # Force one module over budget post-hoc; the planner must drain it
        # even with zero heat signal.
        victims = [m for m in ad.tree.metas]
        src = victims[0].module
        sys.modules[src].capacity_words = sys.modules[src].used_words - 1.0
        tr = HotnessTracker(sys)
        planner = MigrationPlanner(ad.tree, BalanceConfig())
        assert planner.should_rebalance(tr)
        plan = planner.plan(tr)
        assert plan.moves and all(mv.mandatory for mv in plan.moves)
        assert all(mv.src == src for mv in plan.moves)

    def test_choose_destination_is_place_without_capacity(self):
        sys = PIMSystem(8, seed=3)
        for key in [("meta", 5), ("meta", 91), "anything", 42]:
            assert choose_destination(sys, key) == sys.place(key)
        assert sys.n_placement_overrides == 0

    def test_choose_destination_respects_capacity(self):
        sys = PIMSystem(4, module_capacity_words=100, seed=0)
        key = ("meta", 1)
        full = sys.place(key)
        sys.modules[full].alloc_master(95.0)
        dst = choose_destination(sys, key, words=50.0)
        assert dst != full
        assert not sys.modules[dst].over_capacity()
        # The deviation is pinned so later place() calls agree.
        assert sys.place(key) == dst


# ----------------------------------------------------------------------
# Charged executor
# ----------------------------------------------------------------------
class TestExecutor:
    def _plan(self, ad):
        boxes = hot_boxes(ad.tree)
        tr = HotnessTracker(ad.system)
        tr.observe()
        for s in range(2):
            ad.box_count([boxes[(j + s * 32) % len(boxes)]
                          for j in range(32)])
        tr.observe()
        return MigrationPlanner(ad.tree, BalanceConfig(seed=SEED)).plan(tr)

    def test_empty_plan_charges_nothing(self):
        ad = make_adapter()
        before = ad.system.stats.snapshot()
        from repro.balance.planner import MigrationPlan
        out = execute_plan(ad.tree, MigrationPlan())
        assert out == {"moves": 0, "words_moved": 0.0, "mandatory_moves": 0,
                       "clones": 0}
        assert ad.system.stats.snapshot().diff(before).total.rounds == 0

    def test_charges_booked_under_rebalance_phase_only(self):
        tracer = TraceCollector()
        ad = make_adapter(tracer=tracer)
        plan = self._plan(ad)
        assert plan.moves
        before = ad.system.stats.snapshot()
        execute_plan(ad.tree, plan)
        diff = ad.system.stats.snapshot().diff(before)
        reb = diff.phases.get("rebalance")
        assert reb is not None and reb.pim_cycles > 0 and reb.comm_words > 0
        # Everything the migration charged is attributed to "rebalance".
        for label, c in diff.phases.items():
            if label != "rebalance":
                assert c.pim_cycles == 0 and c.comm_words == 0, label
        assert not tracer.timeline.reconcile(ad.system.stats)

    def test_moves_remaster_and_override_routing(self):
        ad = make_adapter()
        plan = self._plan(ad)
        assert plan.moves
        execute_plan(ad.tree, plan)
        for mv in plan.moves:
            assert mv.meta.module == mv.dst
            assert ad.system.place(("meta", mv.meta.root.nid)) == mv.dst
        assert ad.system.n_placement_overrides >= len(plan.moves)
        # Residency bookkeeping matches the new mastership.
        resid = ad.system.residency()
        assert resid.sum() > 0

    def test_override_composes_with_failover(self):
        """Killing a migration target routes around it deterministically."""
        ad = make_adapter()
        plan = self._plan(ad)
        assert plan.moves
        execute_plan(ad.tree, plan)
        mv = plan.moves[0]
        key = ("meta", mv.meta.root.nid)
        assert ad.system.place(key) == mv.dst
        ad.system.decommission(mv.dst)
        rerouted = ad.system.place(key)
        assert rerouted != mv.dst
        assert rerouted not in ad.system.dead_modules
        # And the failover rebuild path accepts the orphaned chunks.
        moved = ad.fail_over(mv.dst)
        assert moved >= 0
        assert all(m.module != mv.dst for m in ad.tree.metas)

    def test_dead_override_target_rejected(self):
        sys = PIMSystem(4, seed=0)
        sys.decommission(3)
        with pytest.raises(ValueError):
            sys.set_placement_override(("meta", 1), 3)
        with pytest.raises(ValueError):
            sys.set_placement_override(("meta", 1), 99)


# ----------------------------------------------------------------------
# Serve-loop integration
# ----------------------------------------------------------------------
class TestServeIntegration:
    def test_serve_accepts_rebalancer(self):
        from repro.serve import make_requests, serve
        from repro.workloads import poisson_arrivals

        data = varden_points(N, 3, seed=SEED)
        ad = PIMZdTreeAdapter(data, n_modules=P, seed=SEED)
        reb = OnlineRebalancer(ad.tree, BalanceConfig(seed=SEED))
        arrivals = poisson_arrivals(20_000.0, 200, seed=SEED + 1)
        reqs = make_requests(data, arrivals, k=5, seed=SEED + 2)
        res = serve(ad, reqs, rebalancer=reb)
        assert res.stats.n_offered == 200
        assert reb.steps > 0

    def test_loop_budget_gate(self):
        """Cumulative rebalance time stays near budget_fraction of service."""
        from repro.serve import (AdmissionQueue, FixedBatchPolicy,
                                 ServeLoop, make_requests)
        from repro.workloads import poisson_arrivals

        data = varden_points(N, 3, seed=SEED)
        ad = PIMZdTreeAdapter(data, n_modules=P, seed=SEED)
        reb = OnlineRebalancer(ad.tree, BalanceConfig(seed=SEED))
        arrivals = poisson_arrivals(20_000.0, 300, seed=SEED + 1)
        reqs = make_requests(data, arrivals, k=5, seed=SEED + 2)
        loop = ServeLoop(ad, AdmissionQueue(256, overflow="reject"),
                         FixedBatchPolicy(32), rebalancer=reb)
        loop.run(reqs)
        assert loop.rebalance_steps > 0
        assert loop.service_time_s > 0.0
        # At most one step can overshoot the gate, and only by its own
        # cost: once over budget, no further steps run until service
        # time catches up.
        if loop.rebalance_time_s > 0.0:
            gate = reb.budget_fraction * loop.service_time_s
            biggest = max((h.get("words_moved", 0.0) for h in reb.history),
                          default=0.0)
            assert loop.rebalance_time_s <= gate or biggest > 0.0
