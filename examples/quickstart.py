#!/usr/bin/env python
"""Quickstart: build a PIM-zd-tree, run every operation, read the meters.

This walks the full public API on a small uniform dataset:

1. simulate a PIM system and build the index,
2. batch INSERT / DELETE,
3. exact kNN and orthogonal range queries,
4. read the simulated performance counters (the PIM Model metrics) and
   convert them to simulated time with the UPMEM-like cost model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Box, PIMSystem, PIMZdTree, throughput_optimized

rng = np.random.default_rng(42)

# ----------------------------------------------------------------------
# 1. A simulated PIM machine and an index over 50k random 3-D points.
# ----------------------------------------------------------------------
points = rng.random((50_000, 3))
system = PIMSystem(n_modules=64, seed=1)
config = throughput_optimized(len(points), system.n_modules)
tree = PIMZdTree(points, config=config, system=system)

print(f"built PIM-zd-tree: n={tree.size}, height={tree.height()}, "
      f"meta-nodes={len(tree.metas)}, L0 on CPU: {tree.l0_on_cpu}")

# ----------------------------------------------------------------------
# 2. Batch updates.
# ----------------------------------------------------------------------
fresh = rng.random((5_000, 3))
tree.insert(fresh)
print(f"after insert: n={tree.size}")

removed = tree.delete(fresh[:2_000])
print(f"after delete: n={tree.size} (removed {removed})")

# ----------------------------------------------------------------------
# 3. Queries — all results are exact.
# ----------------------------------------------------------------------
queries = rng.random((4, 3))
snapshot = system.snapshot()
for q, (dists, neighbours) in zip(queries, tree.knn(queries, k=5)):
    print(f"5-NN of {np.round(q, 3)}: dists {np.round(dists, 4)}")

box = Box(np.array([0.4, 0.4, 0.4]), np.array([0.6, 0.6, 0.6]))
count = tree.box_count([box])[0]
inside = tree.box_fetch([box])[0]
print(f"box {box.lo} .. {box.hi}: {count} points (fetched {len(inside)})")

# ----------------------------------------------------------------------
# 4. Simulated performance: the PIM Model counters + the cost model.
# ----------------------------------------------------------------------
delta = system.stats.diff(snapshot).total
t = tree.cost_model.time(delta)
print("\nsimulated cost of the query section:")
print(f"  CPU work        : {delta.cpu_ops:,.0f} ops")
print(f"  PIM time        : {delta.pim_cycles:,.0f} cycles "
      f"(max per module per round, summed)")
print(f"  communication   : {delta.comm_words:,.0f} words over "
      f"{delta.rounds} BSP rounds")
print(f"  simulated time  : {t.total_s * 1e6:,.1f} µs "
      f"(cpu {t.cpu_s * 1e6:.1f} + pim {t.pim_s * 1e6:.1f} + "
      f"comm {t.comm_s * 1e6:.1f})")
print(f"  bus traffic     : {tree.cost_model.traffic_bytes(delta):,.0f} bytes")

space = tree.space_words()
print(f"\nspace: master {space['master']:,.0f} w, caches {space['cache']:,.0f} w, "
      f"host L0 {space['host_l0']:,.0f} w  "
      f"(raw points would be {tree.size * 4:,} w)")
