#!/usr/bin/env python
"""Choosing a configuration under workload skew (the Table 2 trade-off).

Scenario: a location service indexes points of interest and serves 1-NN
lookups.  Most traffic is uniform, but flash crowds (a stadium, a festival)
concentrate queries on tiny regions — the paper models this with Varden
query mixes (Fig. 9).  This example runs the same query stream against

* the **throughput-optimized** configuration (θ_L0 = n/P, one chunk per
  subtree — minimal communication, skew-sensitive), and
* the **skew-resistant** configuration (finer layers + push-pull search),

and shows the crossover: the throughput-optimized index wins on calm
traffic, the skew-resistant one under flash crowds.

Run:  python examples/skew_study.py
"""

import numpy as np

from repro import PIMSystem, PIMZdTree, skew_resistant, throughput_optimized
from repro.workloads import osm_like_points, zipf_mix_queries

N = 40_000
P = 64
BATCH = 512

base = osm_like_points(N, 3, seed=11)  # road-network-like POI data
print(f"{N:,} points of interest (OSM-like skewed layout), P={P} modules\n")


def build(variant: str) -> PIMZdTree:
    system = PIMSystem(P, seed=5)
    cfg = (
        throughput_optimized(N, P)
        if variant == "throughput"
        else skew_resistant(P)
    )
    return PIMZdTree(base, config=cfg, system=system)


trees = {v: build(v) for v in ("throughput", "skew-resistant")}

print(f"{'varden %':>9} | {'throughput-opt MOp/s':>21} | "
      f"{'skew-resistant MOp/s':>21} | winner")
print("-" * 72)
for i, frac in enumerate((0.0, 0.001, 0.01, 0.05, 0.5)):
    queries = zipf_mix_queries(base, BATCH, frac, seed=100 + i)
    row = {}
    for variant, tree in trees.items():
        snap = tree.system.snapshot()
        tree.knn(queries, k=1)
        d = tree.system.stats.diff(snap).total
        t = tree.cost_model.time(d)
        row[variant] = BATCH / t.total_s / 1e6
    winner = max(row, key=row.get)
    print(f"{frac * 100:8.1f}% | {row['throughput']:21.3f} | "
          f"{row['skew-resistant']:21.3f} | {winner}")

print("\nload imbalance under a flash crowd (max/mean module work):")
crowd = zipf_mix_queries(base, BATCH, 1.0, seed=999)
for variant, tree in trees.items():
    before = tree.system.module_loads().copy()
    tree.knn(crowd, k=1)
    loads = tree.system.module_loads() - before
    if loads.max() == 0:
        print(f"  {variant:15s}: (hot meta-nodes pulled to the host — "
              f"no module touched)")
    else:
        print(f"  {variant:15s}: x{loads.max() / max(loads.mean(), 1e-9):.1f}")
