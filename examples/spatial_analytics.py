#!/usr/bin/env python
"""Spatial analytics on an astronomy-like catalogue (the paper's COSMOS use).

Scenario: a sky-survey pipeline keeps a growing catalogue of objects in a
PIM-zd-tree and answers analytical queries between ingest batches:

* density profiling — BoxCount over a grid of cells,
* cluster neighbourhoods — kNN around the brightest objects,
* region extraction — BoxFetch of everything inside a study window,

while new observations stream in as batch INSERTs.  The same workload on
the shared-memory zd-tree baseline shows the memory-wall gap the paper
measures (Fig. 5b).

Run:  python examples/spatial_analytics.py
"""

import numpy as np

from repro import Box, PIMSystem, PIMZdTree, ZdTree
from repro.baselines import CPUCostMeter
from repro.workloads import cosmos_like_points, gini_coefficient

rng = np.random.default_rng(7)

# A synthetic catalogue calibrated to COSMOS's spatial skew (Gini ≈ 0.29).
catalogue = cosmos_like_points(60_000, 3, seed=7)
print(f"catalogue: {len(catalogue):,} objects, "
      f"Gini over 2048 cells = {gini_coefficient(catalogue, 2048):.3f} "
      f"(real COSMOS: 0.287)")

system = PIMSystem(n_modules=64, seed=3)
tree = PIMZdTree(catalogue[:50_000], system=system)

# ----------------------------------------------------------------------
# Ingest: nightly observation batches.
# ----------------------------------------------------------------------
for night in range(2):
    batch = catalogue[50_000 + night * 5_000 : 50_000 + (night + 1) * 5_000]
    snap = system.snapshot()
    tree.insert(batch)
    d = system.stats.diff(snap).total
    t = tree.cost_model.time(d)
    print(f"night {night}: ingested {len(batch):,} objects in "
          f"{t.total_s * 1e3:.2f} simulated ms "
          f"({len(batch) / t.total_s / 1e6:.2f} MOp/s)")

# ----------------------------------------------------------------------
# Density profile: counts over a coarse grid (batched BoxCount).
# ----------------------------------------------------------------------
grid = 4
cells = []
edges = np.linspace(0, 1, grid + 1)
for i in range(grid):
    for j in range(grid):
        lo = np.array([edges[i], edges[j], 0.0])
        hi = np.array([edges[i + 1], edges[j + 1], 1.0])
        cells.append(Box(lo, hi))
counts = tree.box_count(cells)
print(f"\ndensity grid ({grid}x{grid} columns), total={counts.sum():,}:")
print(counts.reshape(grid, grid))

# ----------------------------------------------------------------------
# Cluster neighbourhoods: 10-NN around sampled dense objects.
# ----------------------------------------------------------------------
dense_cell = int(np.argmax(counts))
probes = catalogue[rng.integers(0, len(catalogue), 5)]
for q, (dists, _) in zip(probes, tree.knn(probes, k=10)):
    print(f"10-NN radius at {np.round(q, 2)}: {dists[-1]:.4f}")

# ----------------------------------------------------------------------
# Region extraction for a study window.
# ----------------------------------------------------------------------
window = Box(np.array([0.3, 0.3, 0.3]), np.array([0.45, 0.45, 0.45]))
objects = tree.box_fetch([window])[0]
print(f"\nstudy window holds {len(objects):,} objects")

# ----------------------------------------------------------------------
# The same analytics on the shared-memory zd-tree baseline, for contrast.
# ----------------------------------------------------------------------
meter = CPUCostMeter()
baseline = ZdTree(catalogue[:50_000], meter=meter)
snap = meter.snapshot()
for c in cells:
    baseline.box_count(c)
base_time = meter.time_s(meter.measure_since(snap))

snap_pim = system.snapshot()
tree.box_count(cells)
d = system.stats.diff(snap_pim).total
pim_time = tree.cost_model.time(d).total_s
print(f"\ndensity profile, simulated: PIM-zd-tree {pim_time * 1e3:.2f} ms vs "
      f"zd-tree baseline {base_time * 1e3:.2f} ms "
      f"(x{base_time / pim_time:.1f})")
