#!/usr/bin/env python
"""Batch-dynamic maintenance: a sliding-window stream of moving objects.

Scenario: a fleet-tracking service keeps the last W position reports of
its vehicles in a PIM-zd-tree.  Every tick it inserts the newest batch,
deletes the expired one, and answers proximity queries ("which vehicles
are near these incidents?").  This exercises the paper's batch-dynamic
machinery end to end: INSERT/DELETE with promotions and demotions, lazy
counters under churn (Lemma 3.1 is asserted every tick), and kNN on the
live window.

Run:  python examples/streaming_updates.py
"""

import numpy as np

from repro import PIMSystem, PIMZdTree

rng = np.random.default_rng(21)

WINDOW = 8          # ticks kept live
TICK = 4_000        # reports per tick
P = 64

# Vehicles drift: each tick's positions are last tick's plus noise.
def tick_positions(prev: np.ndarray) -> np.ndarray:
    stepped = prev + rng.normal(scale=0.01, size=prev.shape)
    return np.clip(stepped, 0.0, 1.0)


history = [rng.random((TICK, 3))]
for _ in range(WINDOW - 1):
    history.append(tick_positions(history[-1]))

system = PIMSystem(P, seed=9)
tree = PIMZdTree(np.vstack(history), system=system,
                 bounds=(np.zeros(3), np.ones(3)))
print(f"window of {tree.size:,} reports across {WINDOW} ticks\n")

for step in range(6):
    new = tick_positions(history[-1])
    expired = history.pop(0)
    history.append(new)

    snap = system.snapshot()
    tree.insert(new)
    tree.delete(expired)
    d = system.stats.diff(snap).total
    t = tree.cost_model.time(d)

    # Live proximity queries on three incident sites.
    incidents = rng.random((3, 3))
    answers = tree.knn(incidents, k=3)
    nearest = [round(float(dd[0]), 4) for dd, _ in answers]

    # Lemma 3.1 must hold under churn.
    stack = [tree.root]
    while stack:
        n = stack.pop()
        assert n.count == 0 or n.count / 2 <= n.sc <= 2 * n.count
        if not n.is_leaf:
            stack.extend((n.left, n.right))

    print(f"tick {step}: window={tree.size:,}  maintenance "
          f"{t.total_s * 1e3:6.2f} sim-ms  "
          f"({2 * TICK / t.total_s / 1e6:5.2f} MOp/s)  "
          f"nearest-vehicle dists {nearest}")

tree.check_invariants()
print("\nstructure verified after churn ✓")
