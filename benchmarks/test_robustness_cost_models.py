"""Robustness of the headline conclusions to the PIM machine model.

§6 argues the techniques "apply to a wide range of architectures beyond
UPMEM".  This bench re-runs a Fig. 5 subset under three PIM cost models —
the UPMEM-calibrated default, a next-generation machine, and a
conservative early-generation part — against the fixed baseline Xeon
model, and checks which conclusions survive:

* box operations: PIM-zd-tree wins under every model (the traffic
  advantage is architectural, not parametric);
* the traffic-reduction factors are model-independent (traffic is counted,
  not timed);
* the conservative machine narrows (and may flip) the kNN/INSERT edges —
  quantifying how much of the paper's win depends on the machine point.
"""

import pytest

from repro.eval import PIMZdTreeAdapter, format_table, geomean, make_adapter, run_suite
from repro.pim import CONSERVATIVE_PIM_2048, FUTURE_PIM_2048, UPMEM_2048

from conftest import BATCH, N_MODULES, SEED

OPS = ("insert", "bc-10", "bf-100", "10-nn")
MODELS = {
    "upmem": UPMEM_2048,
    "future": FUTURE_PIM_2048,
    "conservative": CONSERVATIVE_PIM_2048,
}

_TP: dict[str, dict[str, float]] = {}
_BASE: dict[str, float] = {}


def test_cost_model_sweep(benchmark, datasets, fresh_points_factory, box_sides):
    data = datasets["uniform"]
    fresh = fresh_points_factory("uniform")
    sides = box_sides["uniform"]

    def run():
        pkd = make_adapter("pkd", data, n_modules=N_MODULES)
        for m in run_suite(pkd, data=data, ops=OPS, batch=BATCH // 2, seed=SEED,
                           fresh_points=fresh, box_sides=sides):
            _BASE[m.op] = m.throughput
        for name, model in MODELS.items():
            adapter = PIMZdTreeAdapter(
                data, n_modules=N_MODULES, cost_model=model
            )
            ms = run_suite(adapter, data=data, ops=OPS, batch=BATCH // 2,
                           seed=SEED, fresh_points=fresh, box_sides=sides)
            _TP[name] = {m.op: m.throughput for m in ms}
        return _TP

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_cost_model_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_TP) == set(MODELS)
    print("\n=== Robustness — PIM-zd-tree speedup over Pkd-tree per machine model ===")
    rows = []
    for name in MODELS:
        rows.append(
            [name] + [round(_TP[name][op] / _BASE[op], 2) for op in OPS]
        )
    print(format_table(["machine"] + list(OPS), rows))

    # Box operations win on every machine point.
    for name in MODELS:
        assert _TP[name]["bc-10"] > _BASE["bc-10"], name
        assert _TP[name]["bf-100"] > _BASE["bf-100"], name
    # The future machine strictly improves on the UPMEM point everywhere.
    for op in OPS:
        assert _TP["future"][op] >= 0.95 * _TP["upmem"][op], op
    # The conservative machine narrows the edges.
    narrow = geomean(
        [_TP["conservative"][op] / _TP["upmem"][op] for op in OPS]
    )
    assert narrow < 1.0
