"""Table 3: slowdown when each implementation technique is removed.

Paper numbers (geometric means across query sizes, uniform workloads):

    technique     | INSERT  BoxCount  BoxFetch  kNN
    lazy counter  | 1.49x   N.A.      N.A.      N.A.
    fast z-order  | 1.99x   1.58x     1.31x     1.67x
    fast l2-norm  | N.A.    N.A.      N.A.      1.58x
    direct API    | 1.06x   1.07x     1.09x     1.09x

Each technique is disabled through its config switch (lazy_counters,
fast_zorder, fast_l2) or the cost-model flag (direct_api); the bench
reports measured slowdowns and asserts each targeted operation slows
down when its technique is removed.
"""

import pytest

from repro.core import throughput_optimized
from repro.eval import PIMZdTreeAdapter, format_table, geomean, run_op

from conftest import N_MODULES, SEED
from conftest import BATCH as FULL_BATCH

BATCH = FULL_BATCH // 2
OPS = ("insert", "bc-10", "bf-10", "10-nn")
ABLATIONS = {
    "lazy-counter": {"lazy_counters": False},
    "fast-zorder": {"fast_zorder": False},
    "fast-l2": {"fast_l2": False},
    "direct-api": {"direct_api": False},
}

_SLOWDOWN: dict[str, dict[str, float]] = {}


def _suite_times(datasets, fresh_points_factory, box_sides, **cfg_over):
    data = datasets["uniform"]
    cfg = throughput_optimized(len(data), N_MODULES, **cfg_over)
    adapter = PIMZdTreeAdapter(data, n_modules=N_MODULES, config=cfg)
    fresh = fresh_points_factory("uniform")
    times = {}
    for op in OPS:
        m = run_op(
            adapter, op, data=data, batch=BATCH, seed=SEED,
            box_sides=box_sides["uniform"], fresh_points=fresh,
        )
        times[op] = m.sim_time_s / max(1, m.elements)
    return times


def test_table3_ablations(benchmark, datasets, fresh_points_factory, box_sides):
    def run():
        base = _suite_times(datasets, fresh_points_factory, box_sides)
        for name, over in ABLATIONS.items():
            abl = _suite_times(datasets, fresh_points_factory, box_sides, **over)
            _SLOWDOWN[name] = {op: abl[op] / base[op] for op in OPS}
        return _SLOWDOWN

    benchmark.pedantic(run, rounds=1, iterations=1)
    for name, per_op in _SLOWDOWN.items():
        for op, s in per_op.items():
            benchmark.extra_info[f"{name}:{op}"] = round(s, 3)


def test_table3_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_SLOWDOWN) == set(ABLATIONS)
    print("\n=== Table 3 — slowdown with each technique removed ===")
    rows = [
        [name] + [round(_SLOWDOWN[name][op], 3) for op in OPS]
        for name in ABLATIONS
    ]
    print(format_table(["technique"] + list(OPS), rows))
    print("(paper: lazy 1.49x insert; fast z-order 1.99x/1.58x/1.31x/1.67x;")
    print(" fast l2 1.58x knn; direct API 1.06-1.09x)")

    # Lazy counters target INSERT (paper 1.49x).
    assert _SLOWDOWN["lazy-counter"]["insert"] > 1.05
    # Fast z-order helps every operation that encodes query keys.
    assert _SLOWDOWN["fast-zorder"]["insert"] > 1.0
    assert geomean(
        [_SLOWDOWN["fast-zorder"][op] for op in ("bc-10", "10-nn")]
    ) >= 1.0
    # Fast l2-norm targets kNN (paper 1.58x).
    assert _SLOWDOWN["fast-l2"]["10-nn"] > 1.02
    # Direct API is a small but consistent win (paper 1.06-1.09x).
    assert geomean(list(_SLOWDOWN["direct-api"].values())) > 1.0
    assert geomean(list(_SLOWDOWN["direct-api"].values())) < 1.5
