"""Skew-aware rebalancing: throughput recovery on an adversarial hot shard.

The acceptance experiment for ``repro.balance``: on Varden (Gini >= 0.9)
with several popular chunks hash-colocated on one module, a range-count
workload striking those chunks is straggler-bound — every BSP round is
gated by the hot module's cycles.  With the online rebalancer attached,
the first detection migrates the colocated chunks apart as charged BSP
work under the ``"rebalance"`` phase, and steady-state throughput must
recover to at least 2x the rebalance-off baseline at equal offered load.

Both runs are fully traced; the charge-time timeline must reconcile
bit-exactly against the simulator's own totals, migration cost included.
"""

from __future__ import annotations

import pytest

from repro.balance import BalanceConfig, OnlineRebalancer
from repro.eval.harness import PIMZdTreeAdapter
from repro.eval.skewbench import (
    boxes_under_metas,
    hottest_colocated_metas,
    steady_state_throughput,
    throughput_timeline,
)
from repro.obs import TraceCollector
from repro.workloads import bin_points, gini_coefficient, varden_points

N = 16_000
N_MODULES = 16
SEED = 8
STEPS = 12
BATCH = 64


@pytest.fixture(scope="module")
def skewed_data():
    data = varden_points(N, 3, seed=SEED)
    gini = gini_coefficient(bin_points(data))
    assert gini >= 0.9, f"Varden workload not skewed enough: gini={gini:.3f}"
    return data


def _build(data):
    tracer = TraceCollector()
    adapter = PIMZdTreeAdapter(data, n_modules=N_MODULES, seed=SEED,
                               tracer=tracer)
    return adapter, tracer


def test_rebalance_recovers_throughput_2x(benchmark, skewed_data):
    """Steady-state serving throughput: rebalance-on >= 2x rebalance-off."""
    out: dict[str, object] = {}

    def run():
        adapter_off, tracer_off = _build(skewed_data)
        hot_mid, hot_metas = hottest_colocated_metas(adapter_off.tree)
        boxes = boxes_under_metas(adapter_off.tree, hot_metas, 256,
                                  seed=SEED + 1)
        rows_off = throughput_timeline(adapter_off, boxes, steps=STEPS,
                                       batch=BATCH, kind="bc")
        adapter_on, tracer_on = _build(skewed_data)
        rebalancer = OnlineRebalancer(adapter_on.tree,
                                      BalanceConfig(seed=SEED))
        rows_on = throughput_timeline(adapter_on, boxes, steps=STEPS,
                                      batch=BATCH, kind="bc",
                                      rebalancer=rebalancer)
        out.update(adapter_off=adapter_off, tracer_off=tracer_off,
                   adapter_on=adapter_on, tracer_on=tracer_on,
                   rebalancer=rebalancer, rows_off=rows_off,
                   rows_on=rows_on, hot_mid=hot_mid,
                   hot_chunks=len(hot_metas))
        return rows_on

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows_off, rows_on = out["rows_off"], out["rows_on"]
    rebalancer = out["rebalancer"]
    off = steady_state_throughput(rows_off)
    on = steady_state_throughput(rows_on)
    speedup = on / off

    print(f"\n=== rebalancing — varden n={N}, P={N_MODULES}, "
          f"box-count batch={BATCH}, hot module {out['hot_mid']} "
          f"({out['hot_chunks']} colocated chunks) ===")
    print("  step   off req/s    on req/s   reb ms  moves")
    for a, b in zip(rows_off, rows_on):
        print(f"  {a['step']:4d} {a['throughput']:11,.0f} "
              f"{b['throughput']:11,.0f} {b['rebalance_s'] * 1e3:8.3f} "
              f"{b['migrations']:6d}")
    print(f"  steady state: off {off:,.0f} req/s, on {on:,.0f} req/s "
          f"— {speedup:.2f}x")
    benchmark.extra_info["steady_off"] = off
    benchmark.extra_info["steady_on"] = on
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["migrations"] = rebalancer.migrations

    # The acceptance criterion: >= 2x recovery at equal offered load.
    assert speedup >= 2.0, f"rebalancing speedup only {speedup:.2f}x"
    assert rebalancer.migrations > 0
    # Recovery converges: no migrations in the trailing half.
    tail = rows_on[STEPS // 2:]
    assert all(r["migrations"] == tail[0]["migrations"] for r in tail)

    # Migration is charged work, attributed to the "rebalance" phase...
    stats_on = out["adapter_on"].system.stats
    reb = stats_on.phases.get("rebalance")
    assert reb is not None and reb.pim_cycles > 0 and reb.comm_words > 0
    cm = out["adapter_on"].tree.cost_model
    reb_s = cm.time(reb).total_s
    total_s = cm.time(stats_on.total).total_s
    print(f"  rebalance phase: {reb_s * 1e3:.3f} ms "
          f"({reb_s / total_s * 100:.2f}% of {total_s * 1e3:.3f} ms total)")
    assert 0.0 < reb_s < total_s
    benchmark.extra_info["rebalance_share"] = reb_s / total_s

    # ...and the off run never entered it.
    assert "rebalance" not in out["adapter_off"].system.stats.phases

    # Charge-time reconciliation stays bit-exact for both runs.
    assert not out["tracer_off"].timeline.reconcile(
        out["adapter_off"].system.stats)
    assert not out["tracer_on"].timeline.reconcile(stats_on)
