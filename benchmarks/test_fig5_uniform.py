"""Fig. 5(a): throughput + memory traffic on uniform random workloads.

Regenerates the ten-operation comparison (INSERT, BoxCount-{1,10,100},
BoxFetch-{1,10,100}, {1,10,100}-NN) of PIM-zd-tree vs Pkd-tree vs zd-tree
on the uniform microbenchmark (§7.2), printing the throughput/traffic rows
and asserting the headline shape: PIM-zd-tree leads on every operation
family and reduces memory traffic across the board.
"""

import pytest

from repro.eval import FIG5_OPS, fig5_table, geomean, speedup_summary

from conftest import record, run_fig5_suite

_RESULTS: dict[str, list] = {}


@pytest.mark.parametrize("kind", ["pim", "pkd", "zd"])
def test_fig5_uniform_suite(benchmark, kind, datasets, fresh_points_factory,
                            box_sides):
    data = datasets["uniform"]
    fresh = fresh_points_factory("uniform")
    sides = box_sides["uniform"]

    def run():
        adapter, ms = run_fig5_suite(kind, data, fresh, sides, FIG5_OPS)
        _RESULTS[adapter.name] = ms
        return ms

    ms = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, ms)
    assert all(m.throughput > 0 for m in ms)


def test_fig5_uniform_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Printed table + the paper's qualitative claims."""
    assert set(_RESULTS) == {"pim-zd-tree", "pkd-tree", "zd-tree"}
    print("\n=== Fig. 5(a) — uniform random workloads ===")
    print(fig5_table(_RESULTS))
    print(speedup_summary(_RESULTS))

    pim = {m.op: m for m in _RESULTS["pim-zd-tree"]}
    pkd = {m.op: m for m in _RESULTS["pkd-tree"]}
    zd = {m.op: m for m in _RESULTS["zd-tree"]}

    # Headline shape (paper: 1.82x/4.25x/3.08x/1.46x over Pkd-tree and
    # 1.49x/518x/99x/3.46x over zd-tree, geometric means per family).
    for fam, pred in {
        "insert": lambda op: op == "insert",
        "bc": lambda op: op.startswith("bc-"),
        "bf": lambda op: op.startswith("bf-"),
        "nn": lambda op: op.endswith("-nn"),
    }.items():
        for other in (pkd, zd):
            ratio = geomean(
                [pim[o].throughput / other[o].throughput for o in pim if pred(o)]
            )
            assert ratio > 1.0, (fam, ratio)

    # zd-tree's interval-scan box queries are catastrophically slower.
    zd_bc = geomean([pim[o].throughput / zd[o].throughput for o in pim if o.startswith("bc-")])
    assert zd_bc > 30
    zd_bf = geomean([pim[o].throughput / zd[o].throughput for o in pim if o.startswith("bf-")])
    assert zd_bf > 10

    # Traffic reduction across all ops (paper: 3.5x vs Pkd, 18.8x vs zd).
    t_pkd = geomean(
        [pkd[o].traffic_per_element / pim[o].traffic_per_element for o in pim]
    )
    t_zd = geomean(
        [zd[o].traffic_per_element / pim[o].traffic_per_element for o in pim]
    )
    print(f"traffic reduction geomean: vs pkd x{t_pkd:.2f}, vs zd x{t_zd:.2f}")
    assert t_pkd > 1.5
    assert t_zd > 3.0
