"""Table 2: properties of the two implemented configurations.

Checks the measurable columns of Table 2 at simulation scale: O(n) space
for both configurations, O(1) communication per SEARCH/INSERT for the
throughput-optimized layout, and the (slightly larger but bounded)
O(log_B log_B P)-style communication of the skew-resistant layout.
"""

import numpy as np
import pytest

from repro.eval import format_table, make_adapter
from repro.workloads import uniform_points

from conftest import N_MODULES, SEED

BATCH = 512

_ROWS: list[list] = []


def _comm_per_op(adapter, fn, nops):
    snap = adapter.system.snapshot()
    fn()
    d = adapter.system.stats.diff(snap).total
    return d.comm_words / nops, d.rounds


def test_table2_configs(benchmark, datasets):
    data = datasets["uniform"]

    def run():
        rng = np.random.default_rng(SEED)
        for variant in ("pim", "pim-skew"):
            adapter = make_adapter(variant, data, n_modules=N_MODULES)
            space = adapter.tree.space_words()["total"]
            point_words = len(data) * (adapter.tree.dims + 1)
            q = data[rng.integers(0, len(data), BATCH)]
            search_w, search_r = _comm_per_op(
                adapter, lambda: adapter.tree.search(q), BATCH
            )
            fresh = uniform_points(BATCH, 3, seed=SEED + 5)
            ins_w, ins_r = _comm_per_op(
                adapter, lambda: adapter.insert(fresh), BATCH
            )
            knn_w, _ = _comm_per_op(adapter, lambda: adapter.knn(q[:128], 10), 128)
            _ROWS.append(
                [
                    adapter.variant,
                    round(space / point_words, 2),
                    round(search_w, 1),
                    search_r,
                    round(ins_w, 1),
                    round(knn_w, 1),
                ]
            )
        return _ROWS

    benchmark.pedantic(run, rounds=1, iterations=1)
    for row in _ROWS:
        benchmark.extra_info[f"{row[0]}:space_x"] = row[1]
        benchmark.extra_info[f"{row[0]}:search_w"] = row[2]


def test_table2_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_ROWS) == 2
    print("\n=== Table 2 — configuration properties (measured) ===")
    print(
        format_table(
            ["config", "space/points", "search w/op", "rounds", "insert w/op",
             "knn-10 w/op"],
            _ROWS,
        )
    )
    thr, skw = _ROWS
    # Space O(n) for both (Theorem 5.1): within a constant of raw points.
    assert thr[1] < 10 and skw[1] < 10
    # Throughput-optimized: O(1) search comm, single-digit words per op.
    assert thr[2] < 20
    assert thr[3] <= 2  # one push round end-to-end
    # Skew-resistant pays more rounds/communication, but stays bounded.
    assert skw[3] >= thr[3]
    assert skw[2] < 40 * max(1.0, thr[2])
