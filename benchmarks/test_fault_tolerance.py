"""Fault tolerance: goodput/availability degradation under injected faults.

Sweeps transient message-loss rate × admission-queue overflow policy
through the resilient serving loop (``repro.serve`` + ``repro.faults``)
and runs the kill-1-of-P failover scenario:

* with no faults, availability is 1.0 and nothing fails, times out or
  degrades;
* as the drop rate rises 0 → 10%, retries/backoff inflate service times
  and goodput falls — *gracefully*: every request still lands in exactly
  one terminal state and availability stays well above the drop rate's
  naive compounding;
* killing 1 of P modules mid-run triggers one failover whose rebuild cost
  is visible in the ``"recovery"`` phase of the simulator's charge-time
  attribution, and the recovered index keeps serving.
"""

from __future__ import annotations

import pytest

from repro.eval import make_adapter
from repro.faults import FaultPlan
from repro.serve import make_requests, serve
from repro.workloads import poisson_arrivals, uniform_points

N = 6_000
N_MODULES = 16
SEED = 7
K = 10
REQUESTS = 400
RATE = 40_000.0           # req/s, comfortably below capacity when healthy
DEADLINE_S = 0.02
QUEUE_DEPTH = 256
TIMEOUT_S = 0.01
DROP_RATES = (0.0, 0.02, 0.05, 0.10)
OVERFLOWS = ("reject", "shed-oldest")
TERMINAL_COUNTS = ("n_done", "n_rejected", "n_shed", "n_failed",
                   "n_timed_out", "n_degraded")


@pytest.fixture(scope="module")
def fault_data():
    return uniform_points(N, 3, seed=SEED)


def _faulty_run(data, *, drop_rate, overflow, crash_at=None):
    plan = FaultPlan(seed=SEED, drop_rate=drop_rate, crash_at=crash_at)
    adapter = make_adapter("pim", data, n_modules=N_MODULES, seed=SEED,
                           fault_plan=plan)
    arrivals = poisson_arrivals(RATE, REQUESTS, seed=SEED + 1)
    requests = make_requests(data, arrivals, k=K, deadline_s=DEADLINE_S,
                             seed=SEED + 2)
    res = serve(adapter, requests, queue_depth=QUEUE_DEPTH,
                overflow=overflow, backoff_s=1e-5, timeout_s=TIMEOUT_S)
    return res, adapter, plan


def test_goodput_degrades_gracefully(benchmark, fault_data):
    """Drop-rate × overflow sweep: graceful degradation, no lost requests."""
    sweep: dict[tuple, object] = {}

    def run():
        for overflow in OVERFLOWS:
            for rate in DROP_RATES:
                res, _, plan = _faulty_run(fault_data, drop_rate=rate,
                                           overflow=overflow)
                sweep[(overflow, rate)] = (res.stats, plan.summary())
        return sweep

    benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== fault tolerance — drop-rate sweep "
          f"(knn-{K}, uniform n={N}, P={N_MODULES}, {REQUESTS} req @ "
          f"{RATE:,.0f}/s) ===")
    print("  policy       drop   goodput req/s   p99 ms   avail %   "
          "failed  timed-out  degraded  drops")
    for overflow in OVERFLOWS:
        for rate in DROP_RATES:
            s, events = sweep[(overflow, rate)]
            print(f"  {overflow:11s} {rate:5.2f} {s.goodput:15,.0f} "
                  f"{s.latency['p99'] * 1e3:8.3f} "
                  f"{s.availability * 100:8.2f} {s.n_failed:8d} "
                  f"{s.n_timed_out:10d} {s.n_degraded:9d} "
                  f"{events.get('drop', 0):6d}")
    benchmark.extra_info["sweep"] = {
        f"{overflow}@{rate}": sweep[(overflow, rate)][0].to_dict()
        for overflow in OVERFLOWS for rate in DROP_RATES
    }

    for overflow in OVERFLOWS:
        healthy = sweep[(overflow, 0.0)][0]
        worst = sweep[(overflow, DROP_RATES[-1])][0]
        # No-fault run is clean.
        assert healthy.n_failed == 0 and healthy.n_degraded == 0
        assert healthy.availability == 1.0
        # Every request ends in exactly one terminal state at every rate.
        for rate in DROP_RATES:
            s = sweep[(overflow, rate)][0]
            d = s.to_dict()
            assert sum(d[k] for k in TERMINAL_COUNTS) == s.n_offered, (
                f"requests went missing at {overflow}@{rate}"
            )
            assert 0.0 <= s.availability <= 1.0
        # Degradation is graceful, not a cliff: even at a 10% drop rate
        # retries keep most answers flowing.
        assert worst.availability >= 0.5, (
            f"availability collapsed under {overflow}: {worst.availability}"
        )
        assert worst.goodput <= healthy.goodput, "faults cannot help goodput"


def test_kill_one_of_p_recovery_cost_visible(benchmark, fault_data):
    """Mid-run module kill: failover succeeds and its cost is attributed."""
    out: dict[str, object] = {}

    def run():
        res, adapter, plan = _faulty_run(fault_data, drop_rate=0.0,
                                         overflow="reject",
                                         crash_at={3: 40})
        out["res"], out["adapter"], out["plan"] = res, adapter, plan
        return res

    benchmark.pedantic(run, rounds=1, iterations=1)
    res, adapter, plan = out["res"], out["adapter"], out["plan"]
    stats = adapter.system.stats
    assert 3 in plan.crashed
    assert adapter.system.dead_modules == frozenset({3})
    assert adapter.system.n_live == N_MODULES - 1
    assert all(m.module != 3 for m in adapter.tree.metas)

    cm = adapter.tree.cost_model
    total_s = cm.time(stats.total).total_s
    recovery_s = cm.time(stats.phases["recovery"]).total_s
    assert 0.0 < recovery_s < total_s
    retried = sum(1 for b in res.batches if b.retries > 0)
    assert retried >= 1, "the crash must surface as at least one retry"
    s = res.stats
    d = s.to_dict()
    assert sum(d[k] for k in TERMINAL_COUNTS) == s.n_offered

    print(f"\n=== kill 1 of {N_MODULES} (module 3 @ round 40) ===")
    print(f"  terminal: done {s.n_done} | failed {s.n_failed} | "
          f"timed out {s.n_timed_out} | degraded {s.n_degraded} | "
          f"availability {s.availability * 100:.2f}%")
    print(f"  recovery phase: {recovery_s * 1e3:.3f} ms "
          f"({recovery_s / total_s * 100:.2f}% of {total_s * 1e3:.3f} ms "
          "total sim time)")
    print(f"  retried batches: {retried} | p99 "
          f"{s.latency['p99'] * 1e3:.3f} ms")
    benchmark.extra_info["recovery_share"] = recovery_s / total_s
    benchmark.extra_info["stats"] = s.to_dict()
