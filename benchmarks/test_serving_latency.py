"""Open-loop serving: throughput–latency curve with a saturation knee.

Closed-loop benches (Fig. 5/7) measure throughput with pre-formed batches;
this bench measures what a serving stack is judged on.  Offered load is
swept as a fraction of the calibrated service capacity on a fixed seed:

* below saturation, p99 latency sits near the single-batch service time;
* past the knee the admission queue fills, p99 climbs to the
  queue-depth-bounded delay (>= 10x the low-load p99) while goodput
  plateaus at the service capacity and the overflow policy sheds the
  excess explicitly;
* at equal offered load, the adaptive batcher (online round-overhead
  amortisation, Fig. 7) holds a far lower p99 than the fixed
  request-at-a-time baseline, whose per-dispatch overheads saturate the
  server earlier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import make_adapter
from repro.serve import (
    AdaptiveBatchPolicy,
    AdmissionQueue,
    FixedBatchPolicy,
    ServeLoop,
    calibrate_capacity,
    make_requests,
)
from repro.workloads import poisson_arrivals, uniform_points

N = 8_000
N_MODULES = 32
SEED = 7
K = 10
REQUESTS = 1_200
QUEUE_DEPTH = 512
DEADLINE_S = 0.05
LOADS = (0.1, 0.5, 0.8, 1.5, 3.0)
LOW, KNEE = LOADS[0], LOADS[-1]
EQUAL_LOAD = 0.8  # adaptive-vs-fixed comparison point


@pytest.fixture(scope="module")
def serve_data():
    return uniform_points(N, 3, seed=SEED)


@pytest.fixture(scope="module")
def capacity(serve_data):
    # Calibrate on a throwaway adapter so every serve run starts cold.
    probe = make_adapter("pim", serve_data, n_modules=N_MODULES, seed=SEED)
    return calibrate_capacity(probe, serve_data, k=K, seed=SEED)


def _serve_run(data, capacity, load, policy):
    adapter = make_adapter("pim", data, n_modules=N_MODULES, seed=SEED)
    arrivals = poisson_arrivals(capacity * load, REQUESTS, seed=SEED + 1)
    requests = make_requests(data, arrivals, mix={"knn": 1.0}, k=K,
                             deadline_s=DEADLINE_S, seed=SEED + 2)
    loop = ServeLoop(
        adapter, AdmissionQueue(QUEUE_DEPTH, overflow="reject"), policy
    )
    return loop.run(requests).stats


_CURVE: dict[float, object] = {}


def test_throughput_latency_curve(benchmark, serve_data, capacity):
    """Sweep offered load; the curve must show a visible saturation knee."""

    def run():
        for load in LOADS:
            _CURVE[load] = _serve_run(
                serve_data, capacity, load, AdaptiveBatchPolicy()
            )
        return _CURVE

    benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== open-loop serving — throughput-latency curve "
          f"(knn-{K}, uniform n={N}, P={N_MODULES}, depth={QUEUE_DEPTH}) ===")
    print(f"  capacity ≈ {capacity:,.0f} req/s (calibrated)")
    print("  load   offered req/s   goodput req/s   p50 ms   p99 ms   "
          "rejected  mean batch")
    for load in LOADS:
        s = _CURVE[load]
        print(f"  {load:4.1f} {s.offered_rate:14,.0f} {s.goodput:15,.0f} "
              f"{s.latency['p50'] * 1e3:8.3f} {s.latency['p99'] * 1e3:8.3f} "
              f"{s.n_rejected:9d} {s.mean_batch:11.1f}")
    benchmark.extra_info["curve"] = {
        str(load): _CURVE[load].to_dict() for load in LOADS
    }

    low, knee = _CURVE[LOW], _CURVE[KNEE]
    # The knee: p99 rises >= 10x between low load and saturation ...
    assert knee.latency["p99"] >= 10.0 * low.latency["p99"], (
        f"no saturation knee: p99 {low.latency['p99']:.6f}s @ {LOW}x -> "
        f"{knee.latency['p99']:.6f}s @ {KNEE}x"
    )
    # ... while goodput plateaus at capacity: doubling offered load past
    # saturation moves goodput by < 25%.
    sat, oversat = _CURVE[1.5], _CURVE[3.0]
    assert 0.75 <= oversat.goodput / sat.goodput <= 1.25, (
        f"goodput did not plateau: {sat.goodput:.0f} @ 1.5x vs "
        f"{oversat.goodput:.0f} @ 3.0x"
    )
    # Below saturation nothing is refused; past it backpressure is explicit.
    assert low.n_rejected == 0 and low.n_shed == 0
    assert oversat.n_rejected > 0, "overload must shed explicitly"
    assert oversat.n_offered == (oversat.n_done + oversat.n_rejected
                                 + oversat.n_shed), "requests went missing"


def test_adaptive_beats_fixed_baseline(benchmark, serve_data, capacity):
    """Equal offered load: adaptive batching wins the p99 comparison."""
    out: dict[str, object] = {}

    def run():
        out["adaptive"] = _serve_run(
            serve_data, capacity, EQUAL_LOAD, AdaptiveBatchPolicy()
        )
        out["fixed"] = _serve_run(
            serve_data, capacity, EQUAL_LOAD, FixedBatchPolicy(1)
        )
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    ada, fix = out["adaptive"], out["fixed"]
    print(f"\n=== adaptive vs fixed(B=1) at {EQUAL_LOAD}x capacity ===")
    for name, s in (("adaptive", ada), ("fixed-1", fix)):
        print(f"  {name:9s}: p99 = {s.latency['p99'] * 1e3:9.3f} ms, "
              f"goodput = {s.goodput:10,.0f} req/s, "
              f"mean batch = {s.mean_batch:.1f}")
    benchmark.extra_info["p99_adaptive_s"] = ada.latency["p99"]
    benchmark.extra_info["p99_fixed_s"] = fix.latency["p99"]
    assert ada.latency["p99"] < fix.latency["p99"], (
        "adaptive batcher must beat the fixed-batch baseline on p99 "
        f"({ada.latency['p99']:.6f}s vs {fix.latency['p99']:.6f}s)"
    )
    assert ada.goodput >= fix.goodput
