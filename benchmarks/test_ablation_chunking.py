"""Design ablation (DESIGN.md #7): subtree-size chunking vs per-node placement.

With the chunk factor forced to B = 1, every tree node becomes its own
meta-node on a random module, so every traversed edge is a potential
round-trip through the CPU — the naive master-node design §3 argues
against.  Chunking restores locality: traversals stay on one module for a
whole chunk (and, via L1 caching, for whole cached regions).
"""

import numpy as np
import pytest

from repro.core import skew_resistant
from repro.eval import PIMZdTreeAdapter, format_table

from conftest import N_MODULES, SEED

BATCH = 512

_ROWS: list[list] = []


def test_chunking_ablation(benchmark, datasets):
    data = datasets["uniform"]
    rng = np.random.default_rng(SEED)
    q = data[rng.integers(0, len(data), BATCH)]

    def run():
        for label, b in (("chunked (B=16)", 16), ("per-node (B=1)", 1)):
            cfg = skew_resistant(N_MODULES, chunk_factor=b)
            adapter = PIMZdTreeAdapter(data, n_modules=N_MODULES, config=cfg)
            snap = adapter.system.snapshot()
            adapter.tree.search(q)
            d = adapter.system.stats.diff(snap).total
            _ROWS.append(
                [label, round(d.comm_words / BATCH, 1), d.rounds]
            )
        return _ROWS

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_chunking_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_ROWS) == 2
    print("\n=== Ablation — chunking vs per-node placement (SEARCH) ===")
    print(format_table(["layout", "comm words/op", "rounds"], _ROWS))
    chunked, pernode = _ROWS
    assert pernode[1] > chunked[1]  # more communication per op
    assert pernode[2] >= chunked[2]  # at least as many rounds
