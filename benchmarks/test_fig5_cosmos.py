"""Fig. 5(b): throughput + memory traffic on the COSMOS-like dataset.

The real COSMOS catalogue exhibits moderate spatial skew (Gini ≈ 0.287
over 2048 bins); the synthetic stand-in is calibrated to the same
statistic (see ``repro.workloads.cosmos_like_points`` and DESIGN.md).
"""

import pytest

from repro.eval import fig5_table, geomean, speedup_summary

from conftest import record, run_fig5_suite

# A representative subset keeps the three-index suite affordable while
# covering every operation family of Fig. 5(b).
OPS = ("insert", "bc-1", "bc-100", "bf-10", "bf-100", "1-nn", "10-nn")

_RESULTS: dict[str, list] = {}


@pytest.mark.parametrize("kind", ["pim", "pkd", "zd"])
def test_fig5_cosmos_suite(benchmark, kind, datasets, fresh_points_factory,
                           box_sides):
    data = datasets["cosmos"]
    fresh = fresh_points_factory("cosmos")
    sides = box_sides["cosmos"]

    def run():
        adapter, ms = run_fig5_suite(kind, data, fresh, sides, OPS)
        _RESULTS[adapter.name] = ms
        return ms

    ms = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, ms)
    assert all(m.elements > 0 for m in ms)


def test_fig5_cosmos_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_RESULTS) == {"pim-zd-tree", "pkd-tree", "zd-tree"}
    print("\n=== Fig. 5(b) — COSMOS-like dataset (Gini ≈ 0.29) ===")
    print(fig5_table(_RESULTS))
    print(speedup_summary(_RESULTS))
    pim = {m.op: m for m in _RESULTS["pim-zd-tree"]}
    for other_name in ("pkd-tree", "zd-tree"):
        other = {m.op: m for m in _RESULTS[other_name]}
        overall = geomean([pim[o].throughput / other[o].throughput for o in pim])
        assert overall > 1.0, (other_name, overall)
        traffic = geomean(
            [other[o].traffic_per_element / pim[o].traffic_per_element for o in pim]
        )
        assert traffic > 1.0
