"""Crash & restart: kill the whole machine mid-serve, restart from disk.

The durable tier (``repro.store``) checkpoints copy-on-write snapshots
and write-ahead-logs every update batch, so a whole-machine kill is
survivable: the serve loop restarts from the last snapshot, replays the
committed WAL suffix under the charged ``"recovery"`` phase, and retries
the in-flight batch exactly once.  Three scenario families lock this
down:

* **byte-identical restart** — an insert-only serve run killed mid-way
  must converge to *the same index, byte for byte*, as a never-crashed
  oracle run over the same requests: identical snapshot encodings
  (topology + every chunk) and identical kNN / box-count answers;
* **charged, reconciled recovery** — a standalone restart books every
  cycle/word/op under ``"recovery"`` (phase total == system total on
  every counter) and the attached obs trace reconciles bit-exactly,
  on both the file and sqlite backends, across a failover record;
* **snapshot-cadence sensitivity** — sweeping the checkpoint budget
  fraction trades checkpoint work for restart work: more frequent
  snapshots shorten the WAL replay and the time-to-first-query (TTFQ);
  the table also reports time-to-full-throughput (TTFT, kill → first
  completed batch).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import make_adapter
from repro.faults import FaultPlan
from repro.obs import TraceCollector
from repro.serve import (
    AdmissionQueue,
    FixedBatchPolicy,
    ServeLoop,
    make_requests,
)
from repro.store import DurableStore, encode_tree, open_backend, recover
from repro.workloads import uniform_points

N = 6_000
N_MODULES = 16
SEED = 7
REQUESTS = 1440
BATCH = 48
KILL_ROUND = 53   # insert batches cost ~2 BSP rounds each: mid-stream
BUDGETS = (0.02, 0.2, 1.0)
COUNTERS = ("cpu_ops", "pim_cycles", "comm_words", "dram_words",
            "comm_max_words", "rounds")


@pytest.fixture(scope="module")
def crash_data():
    return uniform_points(N, 3, seed=SEED)


def _insert_requests(data):
    """An insert-only request stream, all arriving at t=0.

    Fixed batching over a pre-filled queue makes batch composition
    independent of the virtual clock, so a crashed run and its oracle
    apply the identical update sequence — the precondition for asking
    for byte-identical final state.  Rebuilt per run: the loop stamps
    request objects in place.
    """
    return make_requests(data, np.zeros(REQUESTS), mix={"insert": 1.0},
                         seed=SEED + 2)


def _serve_run(data, store_path, *, kill_round=None, budget=0.1):
    plan = (FaultPlan(machine_kill_at=kill_round)
            if kill_round is not None else None)
    adapter = make_adapter("pim", data, n_modules=N_MODULES, seed=SEED,
                           fault_plan=plan)
    store = DurableStore(open_backend("file", store_path),
                         budget_fraction=budget)
    store.attach(adapter.tree)
    loop = ServeLoop(adapter, AdmissionQueue(REQUESTS),
                     FixedBatchPolicy(BATCH), store=store)
    result = loop.run(_insert_requests(data))
    return result, loop, store, adapter


def test_kill_mid_serve_byte_identical_restart(benchmark, crash_data,
                                               tmp_path):
    """Whole-machine kill mid-serve → byte-identical index vs the oracle."""
    out: dict[str, object] = {}

    def run():
        out["crash"] = _serve_run(crash_data, tmp_path / "crashed",
                                  kill_round=KILL_ROUND)
        out["oracle"] = _serve_run(crash_data, tmp_path / "oracle")
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)
    result, loop, store, adapter = out["crash"]
    o_result, o_loop, _, o_adapter = out["oracle"]

    assert len(loop.restarts) == 1, "the machine kill must fire mid-serve"
    assert not o_loop.restarts
    r = loop.restarts[0]
    assert r["restart_s"] > 0.0
    # Exactly the in-flight batch was uncommitted; everything else replays.
    assert r["skipped_uncommitted"] == 1
    assert result.stats.n_done == REQUESTS == o_result.stats.n_done

    # The recovered system's books: recovery phase exists and is non-zero.
    stats = adapter.system.stats
    cm = adapter.tree.cost_model
    assert "recovery" in stats.phases
    assert cm.time(stats.phases["recovery"]).total_s > 0.0

    # Byte identity: the crashed run's final index encodes to exactly the
    # oracle's bytes — same manifest, same topology walk, same chunk
    # payloads (the exactly-once guarantee, stated as strongly as it can
    # be stated).
    img = encode_tree(adapter.tree, wal_seq=0)
    o_img = encode_tree(o_adapter.tree, wal_seq=0)
    assert img.manifest == o_img.manifest
    assert img.topology == o_img.topology
    assert set(img.chunks) == set(o_img.chunks)
    for cid in img.chunks:
        assert img.chunks[cid] == o_img.chunks[cid], f"chunk {cid} diverged"

    # And the answers the index gives are byte-identical too.
    rng = np.random.default_rng(SEED + 9)
    queries = crash_data[rng.integers(0, N, size=64)] + 1e-4
    for (d, p), (od, op) in zip(adapter.tree.knn(queries, 8),
                                o_adapter.tree.knn(queries, 8)):
        assert np.array_equal(d, od) and np.array_equal(p, op)
    boxes = np.stack([queries - 0.05, queries + 0.05], axis=1)
    assert np.array_equal(adapter.tree.box_count(boxes),
                          o_adapter.tree.box_count(boxes))
    adapter.tree.check_invariants()

    print(f"\n=== kill whole machine @ round {KILL_ROUND} "
          f"({REQUESTS} inserts, batch {BATCH}, P={N_MODULES}) ===")
    print(f"  killed t={r['killed_at_s'] * 1e3:.3f}ms, TTFQ "
          f"{r['restart_s'] * 1e3:.3f}ms: snapshot {r['snapshot_words']:,} "
          f"words + {r['replayed']} WAL batches replayed, "
          f"{r['skipped_uncommitted']} uncommitted skipped")
    print(f"  checkpoints: {loop.checkpoints} | final index "
          f"{adapter.tree.root.count:,} points — byte-identical to oracle")
    benchmark.extra_info["restart"] = {
        k: (float(v) if isinstance(v, (int, float)) else v)
        for k, v in r.items()
    }


@pytest.mark.parametrize("backend_kind", ["file", "sqlite"])
def test_recovery_charges_book_and_reconcile(benchmark, crash_data, tmp_path,
                                             backend_kind):
    """Every restart charge lands in 'recovery'; the trace is bit-exact."""
    path = (tmp_path / "store.db" if backend_kind == "sqlite"
            else tmp_path / "store")
    adapter = make_adapter("pim", crash_data, n_modules=N_MODULES, seed=SEED)
    store = DurableStore(open_backend(backend_kind, path))
    store.attach(adapter.tree)
    rng = np.random.default_rng(SEED + 3)
    for _ in range(3):
        adapter.tree.insert(uniform_points(40, 3, seed=rng))
    adapter.tree.delete(crash_data[:10])
    adapter.tree.fail_over(2)  # exercises the FAILOVER control record
    oracle_img = encode_tree(adapter.tree, wal_seq=0)

    out: dict[str, object] = {}

    def run():
        tracer = TraceCollector()
        out["res"] = recover(store.backend, tracer=tracer,
                             cost_model=adapter.tree.cost_model)
        out["tracer"] = tracer
        return out["res"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    res, tracer = out["res"], out["tracer"]

    # 3 inserts + 1 delete + the failover control record.
    assert res.replayed == 5 and res.skipped_uncommitted == 0
    assert res.system.dead_modules == frozenset({2})
    img = encode_tree(res.tree, wal_seq=0)
    assert (img.manifest, img.topology, img.chunks) == (
        oracle_img.manifest, oracle_img.topology, oracle_img.chunks)

    # Phase pinning: the *only* phase on the fresh system is "recovery",
    # and it accounts for the system's entire total on every counter.
    stats = res.system.stats
    assert sorted(stats.phases) == ["recovery"]
    rec = stats.phases["recovery"]
    for name in COUNTERS:
        assert getattr(stats.total, name) == getattr(rec, name), name
    problems = tracer.timeline.reconcile(stats)
    assert not problems, problems

    t = res.tree.cost_model.time(stats.total).total_s
    print(f"\n=== standalone recovery ({backend_kind} backend) ===")
    print(f"  {res.replayed} batches replayed over a "
          f"{res.snapshot_words:,.0f}-word snapshot; dead={{2}} restored; "
          f"charged {t * 1e3:.3f}ms, 100% under 'recovery', trace exact")
    benchmark.extra_info["restart_s"] = t


def test_snapshot_cadence_sensitivity(benchmark, crash_data, tmp_path):
    """Checkpoint budget ↑ → WAL replay ↓ → TTFQ ↓ (the durability dial)."""
    rows: dict[float, dict] = {}

    def run():
        for budget in BUDGETS:
            result, loop, store, adapter = _serve_run(
                crash_data, tmp_path / f"b{budget}",
                kill_round=KILL_ROUND, budget=budget)
            assert len(loop.restarts) == 1
            r = loop.restarts[0]
            done = [b.dispatch_s + b.service_s for b in result.batches
                    if b.dispatch_s + b.service_s > r["killed_at_s"]]
            rows[budget] = {
                "checkpoints": loop.checkpoints,
                "checkpoint_ms": loop.checkpoint_time_s * 1e3,
                "replayed": r["replayed"],
                "ttfq_ms": r["restart_s"] * 1e3,
                "ttft_ms": (min(done) - r["killed_at_s"]) * 1e3,
                "done": result.stats.n_done,
            }
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== snapshot-cadence sensitivity (kill @ round {KILL_ROUND}) "
          "===")
    print("  budget   ckpts   ckpt ms   replayed   TTFQ ms   TTFT ms")
    for budget in BUDGETS:
        row = rows[budget]
        print(f"  {budget:6.2f} {row['checkpoints']:7d} "
              f"{row['checkpoint_ms']:9.3f} {row['replayed']:10d} "
              f"{row['ttfq_ms']:9.3f} {row['ttft_ms']:9.3f}")

    lo, hi = rows[BUDGETS[0]], rows[BUDGETS[-1]]
    for row in rows.values():
        assert row["done"] == REQUESTS
        assert row["ttfq_ms"] > 0.0 and row["ttft_ms"] >= row["ttfq_ms"]
    assert hi["checkpoints"] >= lo["checkpoints"]
    assert hi["replayed"] <= lo["replayed"], (
        "a bigger checkpoint budget cannot lengthen the WAL replay")
    benchmark.extra_info["cadence"] = {str(b): rows[b] for b in BUDGETS}
