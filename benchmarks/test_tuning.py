"""Tuned-vs-default headline: the offline search beats the shipped
defaults on two serving benchmark families.

The acceptance experiment for ``repro.tune``: for each family the
strategy-tree search runs on the family's own serving scenario, and the
winning profile is then **re-evaluated from scratch** against the default
configuration — the assertion compares two fresh serve runs, not the
numbers the search reported (though determinism makes those match
bit-for-bit, which is also asserted).

Two families, two regimes where tuning has room to work:

* **Varden skew + deadline** — clustered data at calibrated load with a
  60 ms relative deadline; goodput counts only in-deadline completions,
  so batch-policy tuning converts tail latency into admitted work.
  Tuned goodput must be >= 1.10x default.
* **Multi-tenant diurnal overload** — gold/silver/bronze tenants under
  diurnal bursts at 1.3x calibrated capacity; the burst tail dominates
  p99.  Tuned p99 must be >= 1.10x better (default p99 / tuned p99).

Profiles are per workload class *and* per regime: a profile tuned at one
load/deadline point is not claimed to transfer to another (the search is
cheap precisely so each regime can afford its own).
"""

from __future__ import annotations

import os

import pytest

from repro.tune import default_space, evaluate_config, profile_doc, search

SEED = 7
N = 4000
N_MODULES = 8
REQUESTS = 240
PROCS = max(1, min(8, os.cpu_count() or 1))

FAMILIES = {
    "varden-skew": {
        "workload": "varden",
        "search_kw": {"deadline_ms": 60.0},
        "metric": "goodput",
    },
    "multi-tenant-diurnal": {
        "workload": "diurnal",
        "search_kw": {"load": 1.3},
        "metric": "p99",
    },
}

MIN_IMPROVEMENT = 1.10


def _improvement(metric: str, base: dict, tuned: dict) -> float:
    if metric == "goodput":
        return tuned["goodput"] / base["goodput"]
    return base["p99_s"] / tuned["p99_s"]  # >1 means tuned is faster


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_tuned_profile_beats_defaults(benchmark, family):
    fam = FAMILIES[family]
    out: dict[str, object] = {}

    def run():
        result = search(fam["workload"], seed=SEED, n=N,
                        n_modules=N_MODULES, requests=REQUESTS,
                        generations=2, beam=4, procs=PROCS,
                        **fam["search_kw"])
        # Independent re-evaluation: fresh serve runs of both configs
        # under the search's resolved scenario parameters.
        spec = dict(result.params)
        base = evaluate_config(
            {**spec, "config": default_space().default_config()})
        tuned = evaluate_config({**spec, "config": result.best_node.config})
        out.update(result=result, base=base, tuned=tuned)
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    result, base, tuned = out["result"], out["base"], out["tuned"]
    doc = profile_doc(result)
    gain = _improvement(fam["metric"], base, tuned)

    print(f"\n=== tuning — {family}: {fam['workload']} n={N}, "
          f"P={N_MODULES}, {doc['evaluated']} configs evaluated ===")
    print(f"  tuned knobs: {doc['tuned'] or '(defaults)'}")
    print(f"  {'':10s} {'goodput':>12} {'p99':>12} {'comm words':>14}")
    for name, o in (("default", base), ("tuned", tuned)):
        print(f"  {name:10s} {o['goodput']:>12.1f} "
              f"{o['p99_s'] * 1e3:>10.3f}ms {o['comm_words']:>14,.0f}")
    print(f"  {fam['metric']} improvement: {gain:.3f}x")
    benchmark.extra_info["family"] = family
    benchmark.extra_info["tuned_knobs"] = doc["tuned"]
    benchmark.extra_info["improvement"] = gain

    # Determinism: the fresh re-evaluations reproduce the objectives the
    # search recorded, bit-for-bit.
    assert tuned == result.best_node.objectives
    assert base == result.baseline.objectives
    # The headline: >= 10% better than the shipped defaults.
    assert gain >= MIN_IMPROVEMENT, (
        f"{family}: tuned profile only {gain:.3f}x on {fam['metric']}")
    # And the winner never regresses the other latency objective by more
    # than it gains (Pareto selection keeps it on the front).
    assert not (tuned["goodput"] < base["goodput"]
                and tuned["p99_s"] > base["p99_s"])
