"""Shared benchmark infrastructure.

Each benchmark module regenerates one table or figure of the paper's §7
evaluation.  All benches share session-scoped datasets and calibrated
query boxes, run the identical operation suites through
``repro.eval.harness``, record the *simulated* metrics (throughput,
traffic per element) in ``benchmark.extra_info``, and print the
paper-style rows so the run log can be compared against the paper (see
EXPERIMENTS.md for the recorded comparison).

Scale: warmups default to 40k points (the paper uses 300M on real silicon;
DESIGN.md documents the joint machine scaling that keeps the shape
comparable), with P = 64 simulated modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import calibrate_box_side, make_adapter, run_suite
from repro.workloads import cosmos_like_points, osm_like_points, uniform_points

WARMUP_N = 40_000
BATCH = 512
N_MODULES = 64
SEED = 7

_GENERATORS = {
    "uniform": uniform_points,
    "cosmos": cosmos_like_points,
    "osm": osm_like_points,
}


@pytest.fixture(scope="session")
def datasets():
    return {
        name: gen(WARMUP_N, 3, seed=SEED) for name, gen in _GENERATORS.items()
    }


@pytest.fixture(scope="session")
def fresh_points_factory():
    """Per-dataset fresh-point sources, each threading ONE seeded Generator.

    The generators accept a ``np.random.Generator`` directly, so every
    draw advances a single explicit stream — no module-level RNG state,
    and two factories built the same way produce identical streams.
    """

    def factory(name: str):
        gen = _GENERATORS[name]
        rng = np.random.default_rng((SEED, sorted(_GENERATORS).index(name)))

        def fresh(n: int) -> np.ndarray:
            return gen(n, 3, seed=rng)

        return fresh

    return factory


@pytest.fixture(scope="session")
def box_sides(datasets):
    """Calibrated box sides per dataset per target coverage (§7.2)."""
    out = {}
    for name, data in datasets.items():
        out[name] = {
            t: calibrate_box_side(data, t, seed=SEED) for t in (1, 10, 100)
        }
    return out


def run_fig5_suite(kind: str, data, fresh, sides, ops, *, batch=BATCH,
                   n_modules=N_MODULES, seed=SEED):
    """One index's Fig. 5 measurement suite."""
    adapter = make_adapter(kind, data, n_modules=n_modules)
    return adapter, run_suite(
        adapter,
        data=data,
        ops=ops,
        batch=batch,
        seed=seed,
        fresh_points=fresh,
        box_sides=sides,
    )


def record(benchmark, measurements):
    """Stash simulated metrics on the pytest-benchmark record."""
    for m in measurements:
        benchmark.extra_info[f"{m.op}:mops"] = round(m.throughput / 1e6, 4)
        benchmark.extra_info[f"{m.op}:B/elem"] = round(m.traffic_per_element, 2)
