"""Paper-scale smoke: the vector simulator core at P = 2048.

The scalar per-module core tops out around P = 64 (every round close walks
Python objects); the paper's headline configuration is P = 2048.  Two
guarantees, checked at that scale:

* **Counter-exactness** — `sim_mode="vector"` must leave every PIMStats
  counter byte-identical to the scalar oracle, on a real index workload
  sharded over 2048 modules *and* on a synthetic round-charging storm
  driven straight through the array entry points.
* **Speed** — the round-accounting core itself must be at least 10×
  faster than the scalar oracle at P = 2048 charging volumes (the PR's
  acceptance bar; locally it measures far above that).

Run with:  PYTHONPATH=src python -m pytest benchmarks/test_paper_scale.py -q
"""

from __future__ import annotations

import time

import numpy as np

from repro.eval.harness import PIMZdTreeAdapter, make_boxes
from repro.pim import PIMSystem
from repro.workloads import uniform_points

P = 2048
SEED = 11
MIN_SPEEDUP = 10.0


def _assert_equal(a, b, label: str) -> None:
    if isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray) and a.shape == b.shape, label
        assert np.array_equal(a, b), f"{label}: arrays differ"
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{label}: len {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_equal(x, y, f"{label}[{i}]")
    else:
        assert a == b, f"{label}: {a!r} vs {b!r}"


# ======================================================================
# differential sanity: real index workload at P = 2048
# ======================================================================
def _run_stack(exec_mode: str, sim_mode: str, data, q, boxes, fresh, dele):
    ad = PIMZdTreeAdapter(data, n_modules=P, seed=SEED, exec_mode=exec_mode,
                          sim_mode=sim_mode)
    tree = ad.tree
    out = {
        "knn": tree.knn(q, 10),
        "bc": tree.box_count(boxes),
    }
    tree.insert(fresh)
    out["ndel"] = tree.delete(dele)
    out["knn2"] = tree.knn(q, 10)
    tree.check_invariants()
    return out, ad.system.stats


def test_p2048_sim_modes_identical():
    """Scalar oracle vs vector core on an index sharded over 2048 modules."""
    rng = np.random.default_rng(SEED)
    data = uniform_points(20_000, 3, seed=SEED)
    q = data[rng.integers(0, len(data), size=64)] + 1e-4
    boxes = make_boxes(data, 0.12, 16, seed=SEED + 1)
    fresh = uniform_points(2_000, 3, seed=SEED + 2)
    dele = data[rng.integers(0, len(data), size=500)]

    ref_out, ref_stats = _run_stack("reference", "scalar", data, q, boxes,
                                    fresh, dele)
    vec_out, vec_stats = _run_stack("vectorized", "vector", data, q, boxes,
                                    fresh, dele)

    for key in ref_out:
        _assert_equal(ref_out[key], vec_out[key], key)

    if ref_stats != vec_stats:
        lines = []
        for lab in sorted(set(ref_stats.phases) | set(vec_stats.phases)):
            pa = ref_stats.phases.get(lab)
            pb = vec_stats.phases.get(lab)
            if pa != pb:
                lines.append(f"phase {lab}:\n  scalar={pa}\n  vector={pb}")
        raise AssertionError("PIMStats diverge at P=2048:\n" + "\n".join(lines))
    assert ref_stats.to_dict() == vec_stats.to_dict()


# ======================================================================
# wall-clock: the round-accounting core itself, Fig. 5 charging volumes
# ======================================================================
ROUNDS = 300
PHASES = ("search", "update", "balance")


def _charging_storm(sim_mode: str):
    """ROUNDS rounds of full-width array charges through one PIMSystem.

    Every round touches all P modules with integer-valued, round-varying
    cycle/word amounts — the access pattern of a saturated Fig. 5 batch.
    In scalar mode the array entry points fall back to per-element scalar
    calls, so both modes run the exact same charge sequence through the
    same API and must book the exact same stats.
    """
    sys = PIMSystem(P, seed=SEED, sim_mode=sim_mode)
    mids = np.arange(P, dtype=np.intp)
    base = (np.arange(P, dtype=np.float64) % 97) + 1.0
    t0 = time.perf_counter()
    for r in range(ROUNDS):
        with sys.round():
            for p, phase in enumerate(PHASES[: 2 + r % 2]):
                with sys.phase(phase):
                    sys.charge_pim_array(mids, base + float((r + p) % 13))
                    sys.send_array(mids, base)
                    sys.recv_array(mids, np.float64(2.0))
    wall = time.perf_counter() - t0
    return sys.stats, wall


def test_p2048_round_core_speedup():
    scalar_stats, scalar_wall = _charging_storm("scalar")
    vector_stats, vector_wall = _charging_storm("vector")

    assert scalar_stats.to_dict() == vector_stats.to_dict()

    speedup = scalar_wall / vector_wall
    print(f"\npaper-scale core: scalar {scalar_wall:.2f}s, "
          f"vector {vector_wall:.2f}s, speedup {speedup:.1f}x "
          f"({ROUNDS} rounds x {P} modules)")
    assert speedup >= MIN_SPEEDUP, (
        f"vector core only {speedup:.1f}x faster than the scalar oracle at "
        f"P={P} (need >= {MIN_SPEEDUP}x): scalar {scalar_wall:.2f}s vs "
        f"vector {vector_wall:.2f}s"
    )
