"""Fig. 9: 1-NN throughput under Uniform+Varden query mixes.

The skew-resistant PIM-zd-tree stays stable as the fraction of Varden
(extremely skewed) queries grows, while the throughput-optimized variant
degrades sharply once more than ~0.1% of the batch is skewed (paper:
≤4.1% fluctuation vs 10.66× degradation at 2%).
"""

import pytest

from repro.eval import format_table, make_adapter
from repro.workloads import zipf_mix_queries

from conftest import N_MODULES, SEED

FRACTIONS = (0.0, 0.002, 0.02, 0.2, 1.0)
BATCH = 768

_TP: dict[str, list[float]] = {}


@pytest.mark.parametrize("variant", ["pim", "pim-skew"])
def test_fig9_skew_sweep(benchmark, variant, datasets):
    data = datasets["uniform"]

    def run():
        adapter = make_adapter(variant, data, n_modules=N_MODULES)
        tps = []
        for i, frac in enumerate(FRACTIONS):
            q = zipf_mix_queries(data, BATCH, frac, seed=SEED * 100 + i)
            m = adapter.measure(lambda: adapter.knn(q, 1))
            tps.append(m.throughput / 1e6)
        _TP[variant] = tps
        return tps

    tps = benchmark.pedantic(run, rounds=1, iterations=1)
    for frac, tp in zip(FRACTIONS, tps):
        benchmark.extra_info[f"varden{frac}:mops"] = round(tp, 4)


def test_fig9_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_TP) == {"pim", "pim-skew"}
    print("\n=== Fig. 9 — 1-NN throughput vs Varden query fraction ===")
    rows = [
        [name] + [round(v, 3) for v in _TP[name]]
        for name in ("pim", "pim-skew")
    ]
    print(format_table(["variant"] + [f"{f:g}" for f in FRACTIONS], rows))

    skew_tp = _TP["pim-skew"]
    thr_tp = _TP["pim"]
    # Skew-resistant: never degrades below its uniform throughput (paper:
    # ≤ 4.1% fluctuation; at 100% Varden the pull-to-host path can even
    # speed it up, so the guarantee asserted is no-degradation).
    assert min(skew_tp) > 0.8 * skew_tp[0]
    # Throughput-optimized: clear degradation at high skew fractions
    # (paper: 10.66x at 2% Varden with P=2048; the straggler effect needs
    # proportionally larger fractions at P=64 — see DESIGN.md scaling).
    assert thr_tp[0] > 1.5 * thr_tp[-1]
    # Crossover: under heavy skew the skew-resistant variant wins.
    assert skew_tp[-1] > thr_tp[-1]
