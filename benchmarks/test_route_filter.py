"""Membership routing: FPR vs. traffic saved, uniform vs. Varden skew.

A point-lookup/delete workload where half the keys are absent — the
regime membership filters exist for.  For each dataset the sweep runs
filters-off plus four false-positive-rate targets at the paper's
headline P = 2048 and records the communicated words of the workload
(filter maintenance charges included — rebuilds charge host ops and a
DRAM stream, never the interconnect), the fraction saved versus
filters-off, observed false-positive probes, and resident filter size.

Acceptance bar: at the default FPR (0.01) the Varden-skew workload must
cut communicated words by at least 20%.

Run with:  PYTHONPATH=src python -m pytest benchmarks/test_route_filter.py -q
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import format_table
from repro.eval.harness import PIMZdTreeAdapter
from repro.route import DEFAULT_FPR, RouteFilterSet
from repro.workloads import uniform_points, varden_points

P = 2048
N = 20_000
# Lookup-heavy, miss-heavy: the classic membership-filter regime (check
# before fetch).  The delete batch stays small — removing *present* rows
# re-ships the touched chunks, identical work in both runs that no
# filter can (or should) suppress.
N_LOOKUPS = 24_576        # half present, half absent
N_DELETES = 128           # half present, half absent
SEED = 11
FPRS = (0.001, 0.01, 0.05, 0.1)
MIN_VARDEN_SAVINGS = 0.20

_GENERATORS = {"uniform": uniform_points, "varden": varden_points}
_ROWS: dict[tuple[str, str], dict] = {}


def _workload(name: str):
    """Dataset plus lookup/delete batches with *key-absent* negatives.

    "Absent" must mean absent at Morton-key granularity: on Varden the
    clusters are so dense that fresh draws routinely quantize onto
    resident keys, which no membership filter can (or should) prune.
    Candidates are rejection-filtered through a throwaway tree's codec.
    """
    gen = _GENERATORS[name]
    data = gen(N, 3, seed=SEED)
    rng = np.random.default_rng(SEED + 1)
    n_absent = N_LOOKUPS // 2 + N_DELETES // 2
    from repro.core.morton import MortonCodec

    codec = MortonCodec.fit(data)  # same fit the adapter's tree performs
    resident = np.unique(codec.encode(data))
    pool = np.vstack([gen(4 * n_absent, 3, seed=SEED + 2),
                      uniform_points(4 * n_absent, 3, seed=SEED + 3)])
    pool = pool[~np.isin(codec.encode(pool), resident)]
    assert len(pool) >= n_absent, f"absent pool too small for {name}"
    absent = pool[:n_absent]
    lookups = np.vstack([
        data[rng.integers(0, N, size=N_LOOKUPS // 2)],
        absent[: N_LOOKUPS // 2],
    ])
    deletes = np.vstack([
        data[rng.choice(N, size=N_DELETES // 2, replace=False)],
        absent[N_LOOKUPS // 2:],
    ])
    return data, lookups, deletes


def _presence(results):
    out = []
    for r in results:
        present = False
        if r.leaf is not None and r.leaf.keys is not None:
            key = np.uint64(r.key)
            j = int(np.searchsorted(r.leaf.keys, key))
            present = j < len(r.leaf.keys) and bool(r.leaf.keys[j] == key)
        out.append(present)
    return out


def _run(name: str, fpr: float | None) -> dict:
    data, lookups, deletes = _workload(name)
    adapter = PIMZdTreeAdapter(data, n_modules=P, seed=SEED)
    tree = adapter.tree
    if fpr is not None:
        RouteFilterSet(tree, fpr=fpr)
    base = tree.system.stats.to_dict()["total"]
    results = tree.search(lookups)
    removed = tree.delete(deletes)
    tot = tree.system.stats.to_dict()["total"]
    row = {
        "comm_words": tot["comm_words"] - base["comm_words"],
        "cpu_ops": tot["cpu_ops"] - base["cpu_ops"],
        "hits": _presence(results),
        "removed": removed,
    }
    if fpr is not None:
        s = tree.route_filters.summary()
        row.update(pruned=s["queries_pruned"], fp=s["fp_probes"],
                   kib=s["filter_kib"])
    return row


@pytest.mark.parametrize("dataset", sorted(_GENERATORS))
def test_route_filter_sweep(benchmark, dataset):
    def run():
        rows = {"off": _run(dataset, None)}
        for fpr in FPRS:
            rows[f"{fpr:g}"] = _run(dataset, fpr)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    off = rows["off"]
    for label, row in rows.items():
        # The logical answers never move: same lookup hits, same removals.
        assert row["hits"] == off["hits"], (dataset, label)
        assert row["removed"] == off["removed"], (dataset, label)
        row["saved"] = 1.0 - row["comm_words"] / off["comm_words"]
        _ROWS[(dataset, label)] = row
        benchmark.extra_info[f"{label}:saved_pct"] = round(
            100 * row["saved"], 2)


def test_route_filter_report_and_criterion(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _ROWS, "sweep must run first"
    print("\n=== Membership routing — lookup/delete words vs. FPR "
          f"(P={P}, n={N}, 50% absent keys) ===")
    header = ["dataset", "fpr", "comm words", "saved %", "pruned",
              "fp probes", "filter KiB"]
    out = []
    for (dataset, label), row in sorted(_ROWS.items()):
        out.append([
            dataset, label, f"{row['comm_words']:,.0f}",
            f"{100 * row['saved']:.1f}",
            row.get("pruned", "-"), row.get("fp", "-"),
            row.get("kib", "-"),
        ])
    print(format_table(header, out))

    default = f"{DEFAULT_FPR:g}"
    varden = _ROWS[("varden", default)]
    assert varden["saved"] >= MIN_VARDEN_SAVINGS, (
        f"varden savings {100 * varden['saved']:.1f}% at default FPR "
        f"below the {100 * MIN_VARDEN_SAVINGS:.0f}% bar"
    )
    # Tighter filters never save less than looser ones on either dataset.
    for dataset in _GENERATORS:
        saved = [_ROWS[(dataset, f"{f:g}")]["saved"] for f in FPRS]
        assert saved[0] >= saved[-1] - 1e-9, (dataset, saved)
