"""Fig. 5(c): throughput + memory traffic on the OSM-like dataset.

OSM North America road data is extremely skewed (Gini ≈ 0.967 over 2048
bins); the synthetic stand-in matches the statistic (DESIGN.md).  The
batches of the paper's §7.2 real-world runs query the warmed-up data's own
distribution, so queries here are sampled from the dataset itself.
"""

import pytest

from repro.eval import fig5_table, geomean, speedup_summary

from conftest import record, run_fig5_suite

OPS = ("insert", "bc-1", "bc-100", "bf-10", "bf-100", "1-nn", "10-nn")

_RESULTS: dict[str, list] = {}


@pytest.mark.parametrize("kind", ["pim", "pkd", "zd"])
def test_fig5_osm_suite(benchmark, kind, datasets, fresh_points_factory,
                        box_sides):
    data = datasets["osm"]
    fresh = fresh_points_factory("osm")
    sides = box_sides["osm"]

    def run():
        adapter, ms = run_fig5_suite(kind, data, fresh, sides, OPS)
        _RESULTS[adapter.name] = ms
        return ms

    ms = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, ms)
    assert all(m.elements > 0 for m in ms)


def test_fig5_osm_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_RESULTS) == {"pim-zd-tree", "pkd-tree", "zd-tree"}
    print("\n=== Fig. 5(c) — OSM-like dataset (Gini ≈ 0.97) ===")
    print(fig5_table(_RESULTS))
    print(speedup_summary(_RESULTS))
    pim = {m.op: m for m in _RESULTS["pim-zd-tree"]}
    for other_name in ("pkd-tree", "zd-tree"):
        other = {m.op: m for m in _RESULTS[other_name]}
        overall = geomean([pim[o].throughput / other[o].throughput for o in pim])
        assert overall > 1.0, (other_name, overall)
