"""§7.2 latency results: P99 batch latency of 1-NN on the OSM-like data.

The paper reports P99 latencies of 0.0325 s (PIM-zd-tree), 0.0449 s
(Pkd-tree) and 0.210 s (zd-tree) for 1-NN on OSM, i.e. PIM-zd-tree <
Pkd-tree < zd-tree.  We reproduce the *ordering* on per-batch simulated
latencies (absolute values scale with the simulated batch size).
"""

import numpy as np
import pytest

from repro.eval import make_adapter, percentile

from conftest import N_MODULES, SEED

BATCHES = 24
BATCH = 96


def _latencies(kind, data):
    adapter = make_adapter(kind, data, n_modules=N_MODULES)
    rng = np.random.default_rng(SEED + 1)
    lats = []
    for _ in range(BATCHES):
        q = data[rng.integers(0, len(data), BATCH)]
        m = adapter.measure(lambda: adapter.knn(q, 1))
        lats.append(m.sim_time_s)
    return lats


_P99: dict[str, float] = {}


@pytest.mark.parametrize("kind", ["pim", "pkd", "zd"])
def test_latency_1nn_osm(benchmark, kind, datasets):
    data = datasets["osm"]

    def run():
        lats = _latencies(kind, data)
        _P99[kind] = percentile(lats, 99)
        return lats

    lats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["p99_s"] = _P99[kind]
    benchmark.extra_info["p50_s"] = percentile(lats, 50)
    assert _P99[kind] > 0


def test_latency_ordering(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_P99) == {"pim", "pkd", "zd"}
    print("\n=== §7.2 latency — P99 per-batch 1-NN latency on OSM-like ===")
    for kind, p99 in _P99.items():
        print(f"  {kind:4s}: P99 = {p99 * 1e3:8.3f} ms")
    print("  (paper, absolute: pim 32.5 ms, pkd 44.9 ms, zd 210 ms)")
    assert _P99["pim"] < _P99["pkd"] < _P99["zd"]
