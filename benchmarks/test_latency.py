"""§7.2 latency results: P99 batch latency of 1-NN on the OSM-like data.

The paper reports P99 latencies of 0.0325 s (PIM-zd-tree), 0.0449 s
(Pkd-tree) and 0.210 s (zd-tree) for 1-NN on OSM, i.e. PIM-zd-tree <
Pkd-tree < zd-tree.  We reproduce the *ordering* on per-batch simulated
latencies (absolute values scale with the simulated batch size).
"""

import math
import time

import numpy as np
import pytest

from repro.eval import make_adapter, percentile

from conftest import N_MODULES, SEED

BATCHES = 24
BATCH = 96


def _latencies(kind, data):
    adapter = make_adapter(kind, data, n_modules=N_MODULES)
    rng = np.random.default_rng(SEED + 1)
    lats = []
    for _ in range(BATCHES):
        q = data[rng.integers(0, len(data), BATCH)]
        m = adapter.measure(lambda: adapter.knn(q, 1))
        lats.append(m.sim_time_s)
    return lats


_P99: dict[str, float] = {}


@pytest.mark.parametrize("kind", ["pim", "pkd", "zd"])
def test_latency_1nn_osm(benchmark, kind, datasets):
    data = datasets["osm"]

    def run():
        lats = _latencies(kind, data)
        _P99[kind] = percentile(lats, 99)
        return lats

    lats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["p99_s"] = _P99[kind]
    benchmark.extra_info["p50_s"] = percentile(lats, 50)
    assert _P99[kind] > 0


def test_latency_ordering(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_P99) == {"pim", "pkd", "zd"}
    print("\n=== §7.2 latency — P99 per-batch 1-NN latency on OSM-like ===")
    for kind, p99 in _P99.items():
        print(f"  {kind:4s}: P99 = {p99 * 1e3:8.3f} ms")
    print("  (paper, absolute: pim 32.5 ms, pkd 44.9 ms, zd 210 ms)")
    assert _P99["pim"] < _P99["pkd"] < _P99["zd"]


def test_seed_from_child_box_vectorization_speedup(benchmark, datasets):
    """The batched sibling-pair box-distance evaluation in the kNN L0
    walk (``_child_box_dists``) must beat the per-child scalar form it
    replaced — one ``dist_point_box`` call per child for the coarse
    metric plus one per child for the ℓ∞ secondary filter — with
    bitwise-equal results on the real OSM-like L0."""
    from repro.core.geometry import L2, LINF, dist_point_box
    from repro.core.knn import _child_box_dists
    from repro.core.node import Layer

    data = datasets["osm"]
    tree = make_adapter("pim", data, n_modules=N_MODULES).tree
    pairs = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node.layer != Layer.L0 or node.is_leaf:
            continue
        if node.left.layer == Layer.L0 or node.right.layer == Layer.L0:
            pairs.append((node.left, node.right))
        stack.extend((node.left, node.right))
    assert pairs, "OSM-like tree has an empty L0"
    while len(pairs) < 512:  # enough work per rep to time reliably
        pairs = pairs * 2
    q = data[SEED % len(data)]

    def batched():
        return [_child_box_dists(tree, left, right, q, L2, True)
                for left, right in pairs]

    def legacy():
        # Exactly the replaced per-pop form: one node_box + dist_point_box
        # per child for the coarse metric, then again for the ℓ∞ filter.
        out = []
        for left, right in pairs:
            dc = (dist_point_box(q, tree.node_box(left), L2),
                  dist_point_box(q, tree.node_box(right), L2))
            dl = (dist_point_box(q, tree.node_box(left), LINF),
                  dist_point_box(q, tree.node_box(right), LINF))
            out.append((dc, dl))
        return out

    for (dc_b, dl_b), (dc_l, dl_l) in zip(batched(), legacy()):
        assert (float(dc_b[0]), float(dc_b[1])) == dc_l
        assert (float(dl_b[0]), float(dl_b[1])) == dl_l

    def best_of(fn, reps=5):
        best = math.inf
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    speedup = best_of(legacy) / best_of(batched)
    benchmark.pedantic(batched, rounds=1, iterations=1)
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)
    print(f"\n  _seed_from child-box eval: {speedup:.2f}x vs "
          "per-child scalar dist_point_box")
    assert speedup >= 1.1, f"expected >=1.1x, measured {speedup:.2f}x"
