"""§7.3 sensitivity to dimensions: 2-D vs 3-D uniform workloads.

Paper: 2-D insertion is only ~1.02× faster than 3-D (searches over
fixed-length Morton keys dominate), while box counts / fetches / kNN gain
1.49× / 1.22× / 2.13× from cheaper vector computations and comparisons.
We assert the same asymmetry: insertion is dimension-insensitive, range
queries benefit from fewer dimensions.
"""

import numpy as np
import pytest

from repro.eval import calibrate_box_side, format_table, make_adapter, run_op
from repro.workloads import uniform_points

from conftest import N_MODULES, SEED, WARMUP_N

OPS = ("insert", "bc-10", "bf-10", "10-nn")
BATCH = 384

_TP: dict[int, dict[str, float]] = {}


@pytest.mark.parametrize("dims", [2, 3])
def test_dimension_suite(benchmark, dims):
    data = uniform_points(WARMUP_N // 2, dims, seed=SEED)

    def run():
        adapter = make_adapter("pim", data, n_modules=N_MODULES)
        sides = {10: calibrate_box_side(data, 10, seed=SEED)}
        out = {}
        for op in OPS:
            m = run_op(
                adapter, op, data=data, batch=BATCH, seed=SEED,
                box_sides=sides,
                fresh_points=lambda n: uniform_points(n, dims, seed=SEED + 77),
            )
            out[op] = m.throughput / 1e6
        _TP[dims] = out
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for op, tp in out.items():
        benchmark.extra_info[f"{op}:mops"] = round(tp, 4)


def test_dimension_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_TP) == {2, 3}
    print("\n=== §7.3 — dimension sensitivity (2D vs 3D speedup) ===")
    rows = [
        [op, round(_TP[2][op], 3), round(_TP[3][op], 3),
         round(_TP[2][op] / _TP[3][op], 3)]
        for op in OPS
    ]
    print(format_table(["op", "2D MOp/s", "3D MOp/s", "2D/3D"], rows))
    print("(paper: insert 1.02x; bc 1.49x, bf 1.22x, knn 2.13x)")

    ins_ratio = _TP[2]["insert"] / _TP[3]["insert"]
    # Insert is key-length-bound: near parity.
    assert 0.6 < ins_ratio < 2.0
    # Range queries benefit from the lower dimension more than insert does.
    range_gain = np.mean(
        [_TP[2][op] / _TP[3][op] for op in ("bc-10", "bf-10", "10-nn")]
    )
    assert range_gain > ins_ratio * 0.9
    assert _TP[2]["10-nn"] / _TP[3]["10-nn"] > 1.0
