"""Fig. 6: runtime breakdown (CPU / PIM / CPU↔PIM communication).

The paper's breakdown shows INSERT with a significant CPU share (batch
preprocessing), BoxFetch-100 dominated by communication (large output over
the bus), and the remaining operations dominated by PIM execution — the
design goal of offloading computation to the PIM side.

The breakdown is read from the charge-time per-phase attribution
(``OpMeasurement.phases``): each charge is booked to the phase active
when it happened, so an op's time lands in its own phase label rather
than whatever phase was live when its BSP round closed.
"""

import pytest

from repro.eval import (
    format_table,
    make_adapter,
    make_boxes,
    phase_breakdown_table,
    run_op,
)

from conftest import BATCH, N_MODULES, SEED

OPS = ("insert", "bc-1", "bc-100", "bf-100", "100-nn")

# Which phase label should dominate each op under charge-time attribution.
PRIMARY_PHASE = {
    "insert": "insert",
    "bc-1": "boxcount",
    "bc-100": "boxcount",
    "bf-100": "boxfetch",
    "100-nn": "knn",
}

_BREAKDOWN: dict[str, dict] = {}
_MEASUREMENTS: list = []


def test_fig6_breakdown(benchmark, datasets, fresh_points_factory, box_sides):
    data = datasets["uniform"]
    fresh = fresh_points_factory("uniform")
    sides = box_sides["uniform"]

    def run():
        adapter = make_adapter("pim", data, n_modules=N_MODULES)
        for op in OPS:
            m = run_op(
                adapter, op, data=data, batch=BATCH, seed=SEED,
                box_sides=sides, fresh_points=fresh,
            )
            _BREAKDOWN[op] = m.breakdown_fractions()
            _MEASUREMENTS.append(m)
        return _BREAKDOWN

    benchmark.pedantic(run, rounds=1, iterations=1)
    for op, frac in _BREAKDOWN.items():
        for part, v in frac.items():
            benchmark.extra_info[f"{op}:{part}"] = round(v, 3)
    for m in _MEASUREMENTS:
        for ph, v in m.phase_fractions().items():
            benchmark.extra_info[f"{m.op}:phase:{ph}"] = round(v, 3)


def test_fig6_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_BREAKDOWN) == set(OPS)
    print("\n=== Fig. 6 — runtime breakdown of PIM-zd-tree operations ===")
    rows = [
        [op, f["cpu"], f["pim"], f["comm"]] for op, f in _BREAKDOWN.items()
    ]
    print(format_table(["op", "cpu", "pim", "comm"], rows))

    # BoxFetch-100's output volume makes communication its largest share
    # relative to the small box ops (paper: "high CPU-PIM communication
    # time, as its computation is simple but the output size is large").
    assert _BREAKDOWN["bf-100"]["comm"] > _BREAKDOWN["bc-1"]["comm"] - 0.05
    assert _BREAKDOWN["bf-100"]["comm"] >= 0.3
    # INSERT has a visible CPU component (batch preprocessing).
    assert _BREAKDOWN["insert"]["cpu"] >= _BREAKDOWN["bc-1"]["cpu"]
    # Every operation runs a real PIM component.
    for op in OPS:
        assert _BREAKDOWN[op]["pim"] > 0.02, op

    # Charge-time per-phase attribution: each op's own phase owns the
    # bulk of its time (routing/rechunk overheads land under "other").
    print("\n=== Fig. 6 — per-phase attribution (charge-time) ===")
    print(phase_breakdown_table(_MEASUREMENTS))
    by_op = {m.op: m for m in _MEASUREMENTS}
    assert set(by_op) == set(OPS)
    for op, want in PRIMARY_PHASE.items():
        fr = by_op[op].phase_fractions()
        assert fr, f"{op}: no phase data"
        assert max(fr, key=fr.get) == want, (op, fr)
        assert fr[want] >= 0.75, (op, fr)
