"""Exec-mode smoke: one Fig. 5 uniform config in both execution modes.

Two guarantees, checked on the real benchmark scale (n = 100k uniform,
P = 64) rather than the small tier-1 workloads:

* **Counter-exactness** — the vectorized group kernels must leave every
  simulated measurement (PIMStats, sim time, traffic, per-phase split)
  byte-identical to the scalar reference path.
* **Speed** — the whole point of the vectorized layer: the suite's
  wall-clock must be at least 5× faster than reference mode (the PR's
  acceptance bar; locally it measures ~6-8×).

Run with:  PYTHONPATH=src python -m pytest benchmarks/test_exec_modes_smoke.py -q
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.eval import FIG5_OPS, calibrate_box_side, run_suite
from repro.eval.harness import PIMZdTreeAdapter
from repro.workloads import uniform_points

N = 100_000
BATCH = 256
N_MODULES = 64
SEED = 7
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def workload():
    data = uniform_points(N, 3, seed=SEED)
    sides = {t: calibrate_box_side(data, t, seed=SEED) for t in (1, 10, 100)}
    return data, sides


def _run(mode: str, data, sides):
    fresh_rng = np.random.default_rng(SEED * 1000)

    def fresh(n: int) -> np.ndarray:
        return uniform_points(n, 3, seed=fresh_rng)

    ad = PIMZdTreeAdapter(data, n_modules=N_MODULES, seed=SEED,
                          exec_mode=mode)
    t0 = time.perf_counter()
    ms = run_suite(ad, data=data, ops=FIG5_OPS, batch=BATCH, seed=SEED,
                   fresh_points=fresh, box_sides=sides)
    wall = time.perf_counter() - t0
    return ms, ad.system.stats, wall


def test_fig5_uniform_both_modes(workload):
    data, sides = workload
    ref_ms, ref_stats, ref_wall = _run("reference", data, sides)
    vec_ms, vec_stats, vec_wall = _run("vectorized", data, sides)

    # --- identical simulated measurements, op by op -------------------
    for a, b in zip(ref_ms, vec_ms):
        assert a.op == b.op
        assert a.elements == b.elements, a.op
        assert a.sim_time_s == b.sim_time_s, a.op
        assert a.traffic_bytes == b.traffic_bytes, a.op
        assert a.phases == b.phases, a.op

    # --- identical full stats, with a per-phase diff on failure -------
    if ref_stats != vec_stats:
        lines = []
        for lab in sorted(set(ref_stats.phases) | set(vec_stats.phases)):
            pa = ref_stats.phases.get(lab)
            pb = vec_stats.phases.get(lab)
            if pa != pb:
                lines.append(f"phase {lab}:\n  ref={pa}\n  vec={pb}")
        raise AssertionError("PIMStats diverge at n=100k:\n" + "\n".join(lines))

    # --- wall-clock speedup -------------------------------------------
    speedup = ref_wall / vec_wall
    print(f"\nexec-mode smoke: reference {ref_wall:.2f}s, "
          f"vectorized {vec_wall:.2f}s, speedup {speedup:.2f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized suite only {speedup:.2f}x faster than reference "
        f"(need >= {MIN_SPEEDUP}x): ref {ref_wall:.2f}s vs vec {vec_wall:.2f}s"
    )
