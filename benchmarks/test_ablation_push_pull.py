"""Design ablation (DESIGN.md #6): push-pull search vs push-only.

Without push-pull, a contended batch piles all its queries onto the few
modules mastering the hot meta-nodes; the straggler's PIM time then
dominates the round.  Push-pull pulls the hot meta-nodes to the host and
caps the imbalance (§3.3).
"""

import numpy as np
import pytest

from repro.core import skew_resistant
from repro.eval import PIMZdTreeAdapter, format_table

from conftest import N_MODULES, SEED

BATCH = 768

_RESULT: dict[bool, float] = {}


def test_push_pull_ablation(benchmark, datasets):
    data = datasets["uniform"]
    rng = np.random.default_rng(SEED)
    hot = np.tile(data[123], (BATCH, 1)) + rng.normal(scale=1e-5, size=(BATCH, 3))

    def run():
        for enabled in (True, False):
            cfg = skew_resistant(N_MODULES, push_pull=enabled)
            adapter = PIMZdTreeAdapter(data, n_modules=N_MODULES, config=cfg)
            m = adapter.measure(lambda: adapter.knn(hot, 1))
            _RESULT[enabled] = m.throughput / 1e6
        return _RESULT

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["push_pull:mops"] = round(_RESULT[True], 4)
    benchmark.extra_info["push_only:mops"] = round(_RESULT[False], 4)


def test_push_pull_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\n=== Ablation — push-pull vs push-only on an adversarial batch ===")
    print(
        format_table(
            ["mode", "1-NN MOp/s"],
            [["push-pull", round(_RESULT[True], 3)],
             ["push-only", round(_RESULT[False], 3)]],
        )
    )
    assert _RESULT[True] > _RESULT[False]
