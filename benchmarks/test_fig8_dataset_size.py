"""Fig. 8: 1-NN throughput and traffic versus base dataset size.

Theory (§5): PIM-zd-tree's communication is bounded by P, independent of
n, so its performance stays flat as the dataset grows; the shared-memory
baselines' search paths lengthen with log n and their cache hit rates
fall, so their throughput degrades (paper: 1.4–1.6× over a 15× size range)
and traffic grows (1.3–1.5×).
"""

import numpy as np
import pytest

from repro.eval import format_table, make_adapter
from repro.workloads import uniform_points

from conftest import N_MODULES, SEED

SIZES = (10_000, 20_000, 40_000, 80_000)
BATCH = 384

_TP: dict[str, list[float]] = {}
_TRAFFIC: dict[str, list[float]] = {}


@pytest.mark.parametrize("kind", ["pim", "pkd", "zd"])
def test_fig8_size_sweep(benchmark, kind):
    def run():
        tps, traffics = [], []
        for n in SIZES:
            data = uniform_points(n, 3, seed=SEED)
            adapter = make_adapter(kind, data, n_modules=N_MODULES)
            rng = np.random.default_rng(SEED + n)
            q = data[rng.integers(0, n, BATCH)]
            m = adapter.measure(lambda: adapter.knn(q, 1))
            tps.append(m.throughput / 1e6)
            traffics.append(m.traffic_per_element)
        _TP[kind] = tps
        _TRAFFIC[kind] = traffics
        return tps

    tps = benchmark.pedantic(run, rounds=1, iterations=1)
    for n, tp in zip(SIZES, tps):
        benchmark.extra_info[f"n{n}:mops"] = round(tp, 4)


def test_fig8_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_TP) == {"pim", "pkd", "zd"}
    print("\n=== Fig. 8 — 1-NN throughput vs dataset size ===")
    rows = []
    for kind in ("pim", "pkd", "zd"):
        rows.append([kind] + [round(v, 3) for v in _TP[kind]])
    print(format_table(["index"] + [f"n={n}" for n in SIZES], rows))

    def degradation(kind):
        return max(_TP[kind]) / max(min(_TP[kind]), 1e-12)

    # PIM-zd-tree stays flat; the baselines degrade more with n.
    pim_var = degradation("pim")
    print(
        f"degradation over the sweep: pim x{pim_var:.2f}, "
        f"pkd x{degradation('pkd'):.2f}, zd x{degradation('zd'):.2f} "
        f"(paper: stable vs 1.4x / 1.6x)"
    )
    assert pim_var < 2.0
    assert degradation("pkd") > pim_var * 0.9
    assert degradation("zd") > pim_var * 0.9
    # Baseline throughput is monotone-ish decreasing over the sweep.
    assert _TP["pkd"][-1] < _TP["pkd"][0]
    assert _TP["zd"][-1] < _TP["zd"][0]
    # Baseline traffic per element grows with n.
    assert _TRAFFIC["pkd"][-1] > _TRAFFIC["pkd"][0]
