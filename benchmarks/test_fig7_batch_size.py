"""Fig. 7: INSERT performance versus batch size.

Larger batches amortise the mux-switch / per-round overheads, raising
throughput; beyond a point the batch's auxiliary structures spill the LLC
and memory traffic per operation grows (paper: > 200k ops at full scale —
proportionally smaller here because the LLC is scaled with the dataset,
DESIGN.md).
"""

import pytest

from repro.eval import format_table, make_adapter
from repro.workloads import uniform_points

from conftest import N_MODULES, SEED

# Scaled-down analogue of the paper's 50k…2M sweep.
BATCH_SIZES = (128, 256, 512, 1024, 2048, 4096)

_ROWS: list[list] = []


def test_fig7_batch_size_sweep(benchmark, datasets):
    data = datasets["uniform"]

    def run():
        for batch in BATCH_SIZES:
            adapter = make_adapter("pim", data, n_modules=N_MODULES)
            fresh = uniform_points(batch, 3, seed=SEED * 31 + batch)
            m = adapter.measure(lambda: adapter.insert(fresh))
            _ROWS.append(
                [batch, m.throughput / 1e6, m.traffic_bytes / batch]
            )
        return _ROWS

    benchmark.pedantic(run, rounds=1, iterations=1)
    for batch, mops, traffic in _ROWS:
        benchmark.extra_info[f"batch{batch}:mops"] = round(mops, 4)
        benchmark.extra_info[f"batch{batch}:B/op"] = round(traffic, 1)


def test_fig7_report_and_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_ROWS) == len(BATCH_SIZES)
    print("\n=== Fig. 7 — INSERT vs batch size ===")
    print(format_table(["batch", "MOp/s", "traffic B/op"], _ROWS))

    mops = [r[1] for r in _ROWS]
    traffic = [r[2] for r in _ROWS]
    # Throughput improves substantially from the smallest to the largest
    # batch (mux/round amortisation).
    assert max(mops[-2:]) > 1.3 * mops[0]
    # Traffic per op does not keep improving at the largest batches: the
    # LLC-spill effect puts the minimum strictly before the end.
    assert min(traffic) < traffic[-1] * 1.05
