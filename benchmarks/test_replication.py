"""Tenant isolation under replication: an adversarial flood must not
degrade a victim's tail latency.

The serving story this PR adds — weighted-fair admission
(``repro.serve.tenants``) composed with K-way chunk replication
(``repro.replicate``) — is judged by one number: the victim tenant's p99
with an adversary flooding at **10x its fair share** must stay within
**1.5x** of the victim-alone baseline.  Three deterministic runs on the
same machine shape:

* ``baseline`` — the gold-SLO victim alone at 0.4x capacity;
* ``fair``     — victim + bronze adversary offering 10x its weighted
  fair share, weighted-fair dequeue + fair-share shedding + K=2
  replicas: the flood sheds itself, the victim's p99 holds;
* ``fifo``     — the same flood with tenancy off (plain FIFO,
  shed-oldest): the victim's queued work is evicted alongside the
  flood's, so its completed share collapses — the no-isolation foil.
"""

from __future__ import annotations

import pytest

from repro.eval import make_adapter
from repro.replicate import ReplicationConfig
from repro.serve import (
    FixedBatchPolicy,
    TenantPolicy,
    calibrate_capacity,
    make_requests,
    serve,
)
from repro.workloads import poisson_arrivals, uniform_points

N = 8_000
N_MODULES = 16
SEED = 7
K = 10
QUEUE_DEPTH = 256
# Per-request dispatch: the service quantum is identical across the three
# runs, so the victim's p99 shift measures *queueing* isolation alone —
# with batched dispatch the flood also inflates the victim's batch
# service time and the comparison conflates the two effects.
BATCH = 1
VICTIM_LOAD = 0.4        # fraction of calibrated capacity
N_VICTIM = 250
OVERSHARE = 10.0         # adversary offers 10x its weighted fair share
WEIGHTS = {"victim": 4.0, "adv": 1.0}   # gold vs bronze SLO classes
P99_BOUND = 1.5


@pytest.fixture(scope="module")
def data():
    return uniform_points(N, 3, seed=SEED)


@pytest.fixture(scope="module")
def capacity(data):
    probe = make_adapter("pim", data, n_modules=N_MODULES, seed=SEED)
    return calibrate_capacity(probe, data, k=K, batch=BATCH, seed=SEED)


def _tagged(data, rate, n, tenant, arrival_seed, payload_seed):
    arrivals = poisson_arrivals(rate, n, seed=arrival_seed)
    return make_requests(data, arrivals, mix={"knn": 1.0}, k=K,
                         deadline_s=0.05, seed=payload_seed,
                         tenants={tenant: 1.0})


def _merge(*streams):
    merged = sorted((r for s in streams for r in s),
                    key=lambda r: (r.arrival_s, r.tenant, r.rid))
    for rid, r in enumerate(merged):
        r.rid = rid
    return merged


def _victim_stream(data, capacity):
    return _tagged(data, VICTIM_LOAD * capacity, N_VICTIM, "victim",
                   SEED + 1, SEED + 2)


def _attack_stream(data, capacity):
    # The adversary's weighted fair share of capacity, then 10x it.  Its
    # request count covers the victim's whole arrival horizon.
    share = WEIGHTS["adv"] / sum(WEIGHTS.values())
    rate = OVERSHARE * share * capacity
    horizon = N_VICTIM / (VICTIM_LOAD * capacity)
    n_adv = int(rate * horizon)
    return _tagged(data, rate, n_adv, "adv", SEED + 3, SEED + 4)


def _run(data, requests, *, tenants):
    adapter = make_adapter("pim", data, n_modules=N_MODULES, seed=SEED)
    return serve(
        adapter, requests,
        queue_depth=QUEUE_DEPTH, overflow="shed-oldest",
        policy=FixedBatchPolicy(BATCH),
        tenants=tenants,
        replication=ReplicationConfig(k=2),
    ).stats


def test_victim_p99_survives_adversarial_flood(benchmark, data, capacity):
    out: dict[str, object] = {}

    def run():
        victim = _victim_stream(data, capacity)
        flood = _attack_stream(data, capacity)
        policy = TenantPolicy.from_classes(
            {"victim": "gold", "adv": "bronze"})
        out["baseline"] = _run(data, _merge(victim), tenants=policy)
        out["fair"] = _run(data, _merge(victim, flood), tenants=policy)
        out["fifo"] = _run(data, _merge(victim, flood), tenants=None)
        return out

    benchmark.pedantic(run, rounds=1, iterations=1)

    base = out["baseline"].by_tenant["victim"]
    fair = out["fair"].by_tenant["victim"]
    fifo = out["fifo"].by_tenant["victim"]
    adv = out["fair"].by_tenant["adv"]

    print("\n=== tenant isolation under a 10x-fair-share flood "
          f"(knn-{K}, uniform n={N}, P={N_MODULES}, K=2 replicas, "
          f"depth={QUEUE_DEPTH}) ===")
    print(f"  capacity ≈ {capacity:,.0f} req/s; victim at "
          f"{VICTIM_LOAD:.0%}, adversary at {OVERSHARE:.0f}x its "
          f"{WEIGHTS['adv'] / sum(WEIGHTS.values()):.0%} share")
    print("  run        victim p99 ms   victim done   victim shed   "
          "adv done   adv shed")
    for name, v in (("baseline", base), ("fair", fair), ("fifo", fifo)):
        a = out[name.replace("baseline", "fair")].by_tenant.get("adv", {}) \
            if name != "baseline" else {}
        print(f"  {name:9s} {v['latency_s']['p99'] * 1e3:14.3f} "
              f"{v['n_done']:13d} {v['n_shed']:13d} "
              f"{a.get('n_done', 0):10d} {a.get('n_shed', 0):10d}")
    benchmark.extra_info["victim_p99_baseline_s"] = base["latency_s"]["p99"]
    benchmark.extra_info["victim_p99_fair_s"] = fair["latency_s"]["p99"]
    benchmark.extra_info["victim_p99_fifo_s"] = fifo["latency_s"]["p99"]
    benchmark.extra_info["replication"] = out["fair"].replication

    # Replication was actually on for the serving runs.
    assert out["fair"].replication["chunks_replicated"] > 0

    # The acceptance bound: a 10x-fair-share flood moves the gold
    # victim's p99 by at most 1.5x.
    ratio = fair["latency_s"]["p99"] / base["latency_s"]["p99"]
    assert ratio <= P99_BOUND, (
        f"victim p99 degraded {ratio:.2f}x under flood "
        f"({base['latency_s']['p99']:.6f}s -> "
        f"{fair['latency_s']['p99']:.6f}s), bound is {P99_BOUND}x"
    )

    # Fair-share shedding makes the flood pay for its own overflow: the
    # victim keeps (nearly) all of its completions, the adversary sheds.
    assert fair["n_shed"] == 0, "victim work was shed despite fair share"
    assert adv["n_shed"] > 0, "the flood must absorb the shedding"
    assert fair["n_done"] == base["n_done"]

    # The no-isolation foil: plain FIFO shed-oldest evicts the victim's
    # queued work along with the flood's, collapsing its completed share.
    assert fifo["n_done"] < fair["n_done"], (
        f"FIFO should hurt the victim: done {fifo['n_done']} vs fair "
        f"{fair['n_done']}"
    )
